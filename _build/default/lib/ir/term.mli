(** Basic-block terminators, with explicit successor labels.

    The IR keeps both successors of conditional control flow explicit; the
    layout pass ({!Layout}) decides which successor becomes the machine-level
    fall-through and inserts [jmp] instructions where layout order cannot
    provide one. *)

open Bv_isa

type t =
  | Jump of Label.t
  | Branch of
      { on : bool;
        src : Reg.t;
        taken : Label.t;
        not_taken : Label.t;
        id : int }
      (** Conditional branch on [(src <> 0) = on]; [id] is the static branch
          site used by profiles. *)
  | Predict of { taken : Label.t; not_taken : Label.t; id : int }
      (** Decomposed-branch prediction point: front end picks a successor. *)
  | Resolve of
      { on : bool;
        src : Reg.t;
        mispredict : Label.t;
        fallthrough : Label.t;
        predicted_taken : bool;
        id : int }
      (** Decomposed-branch resolution point for the path on which the paired
          predict chose [predicted_taken]. Control goes to [mispredict] iff
          the original outcome [(src <> 0) = on] differs from
          [predicted_taken]. *)
  | Call of { target : Label.t; return_to : Label.t }
      (** Call; execution resumes at [return_to], which layout must place
          immediately after the call. *)
  | Ret
  | Halt

val successors : t -> Label.t list
(** Successor labels inside the same procedure, in (taken-first) order.
    [Call] reports only [return_to]; [Ret] and [Halt] report none. *)

val fallthrough_successor : t -> Label.t option
(** The successor that layout should try to place immediately after the
    block: the not-taken side of branches/predicts, the fall-through of
    resolves, the [return_to] of calls, the target of jumps. *)

val branch_site : t -> int option
(** The static branch-site id for profiled terminators ([Branch]). *)

val map_labels : (Label.t -> Label.t) -> t -> t

val pp : Format.formatter -> t -> unit
