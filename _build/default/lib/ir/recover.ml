open Bv_isa

module Intset = Set.Make (Int)

let image (img : Layout.image) =
  let code = img.Layout.code in
  let len = Array.length code in
  if len = 0 then invalid_arg "Recover.image: empty code";
  let target_pc l = Layout.resolve img l in
  (* ---- leaders and procedure starts ---- *)
  let proc_starts = ref (Intset.singleton img.Layout.entry) in
  let call_names = Hashtbl.create 8 in
  let leaders = ref (Intset.singleton img.Layout.entry) in
  let add_leader pc = if pc < len then leaders := Intset.add pc !leaders in
  Array.iteri
    (fun pc instr ->
      (match instr with
      | Instr.Call l ->
        let t = target_pc l in
        proc_starts := Intset.add t !proc_starts;
        Hashtbl.replace call_names t l
      | Instr.Branch { target; _ }
      | Instr.Jump target
      | Instr.Predict { target; _ }
      | Instr.Resolve { target; _ } ->
        add_leader (target_pc target)
      | _ -> ());
      if Instr.is_terminator instr then add_leader (pc + 1))
    code;
  Intset.iter (fun pc -> add_leader pc) !proc_starts;
  (* ---- naming ---- *)
  let block_label pc = Printf.sprintf "B%d" pc in
  let proc_name pc =
    match Hashtbl.find_opt call_names pc with
    | Some l -> l
    | None -> Printf.sprintf "proc%d" pc
  in
  let retarget l = block_label (target_pc l) in
  (* ---- carve blocks ---- *)
  let leader_list = Intset.elements !leaders in
  let next_leader =
    let arr = Array.of_list (leader_list @ [ len ]) in
    fun pc ->
      (* smallest leader strictly greater than pc *)
      let rec go i = if arr.(i) > pc then arr.(i) else go (i + 1) in
      go 0
  in
  let block_of start =
    let stop = next_leader start in
    let rec body pc acc =
      if pc >= stop then (List.rev acc, None)
      else
        let instr = code.(pc) in
        if Instr.is_terminator instr then begin
          if pc <> stop - 1 then
            invalid_arg "Recover.image: terminator inside a block";
          (List.rev acc, Some instr)
        end
        else body (pc + 1) (instr :: acc)
    in
    let body, term_instr = body start [] in
    let fallthrough () =
      if stop >= len then
        invalid_arg
          (Printf.sprintf "Recover.image: fall-through past the end at %d"
             stop);
      block_label stop
    in
    let term =
      match term_instr with
      | None -> Term.Jump (fallthrough ())
      | Some (Instr.Jump l) -> Term.Jump (retarget l)
      | Some (Instr.Branch { on; src; target; id }) ->
        Term.Branch
          { on; src; taken = retarget target; not_taken = fallthrough (); id }
      | Some (Instr.Predict { target; id }) ->
        Term.Predict { taken = retarget target; not_taken = fallthrough (); id }
      | Some (Instr.Resolve { on; src; target; predicted_taken; id }) ->
        Term.Resolve
          { on;
            src;
            mispredict = retarget target;
            fallthrough = fallthrough ();
            predicted_taken;
            id
          }
      | Some (Instr.Call l) ->
        Term.Call { target = proc_name (target_pc l); return_to = fallthrough () }
      | Some Instr.Ret -> Term.Ret
      | Some Instr.Halt -> Term.Halt
      | Some i ->
        invalid_arg
          ("Recover.image: unexpected terminator " ^ Instr.to_string i)
    in
    Block.make ~label:(block_label start) ~body ~term
  in
  (* ---- partition into procedures ---- *)
  let procs =
    let starts = Intset.elements !proc_starts in
    List.map
      (fun pstart ->
        let pend =
          match
            List.filter (fun s -> s > pstart) starts
          with
          | [] -> len
          | next :: _ -> next
        in
        let blocks =
          List.filter_map
            (fun l ->
              if l >= pstart && l < pend then Some (block_of l) else None)
            leader_list
        in
        Proc.make ~name:(proc_name pstart) blocks)
      starts
  in
  let original = img.Layout.program in
  Program.make
    ~segments:original.Program.segments
    ~mem_words:original.Program.mem_words
    ~main:(proc_name img.Layout.entry)
    procs
