open Bv_isa
module Sset = Set.Make (String)

type t =
  { entry : Label.t;
    doms : (Label.t, Sset.t) Hashtbl.t  (* reachable block -> dominators *)
  }

let compute proc =
  let rpo = Cfg.reverse_postorder proc in
  let reachable = Sset.of_list rpo in
  let preds_all = Cfg.predecessor_map proc in
  let preds l =
    List.filter
      (fun p -> Sset.mem p reachable)
      (Option.value (Hashtbl.find_opt preds_all l) ~default:[])
  in
  let doms = Hashtbl.create 64 in
  let entry = proc.Proc.entry in
  Hashtbl.replace doms entry (Sset.singleton entry);
  List.iter
    (fun l -> if not (Label.equal l entry) then Hashtbl.replace doms l reachable)
    rpo;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if not (Label.equal l entry) then begin
          let inter =
            match preds l with
            | [] -> Sset.singleton l
            | p :: rest ->
              List.fold_left
                (fun acc q -> Sset.inter acc (Hashtbl.find doms q))
                (Hashtbl.find doms p) rest
          in
          let now = Sset.add l inter in
          if not (Sset.equal now (Hashtbl.find doms l)) then begin
            Hashtbl.replace doms l now;
            changed := true
          end
        end)
      rpo
  done;
  { entry; doms }

let dominates t a b =
  if Label.equal a b then true
  else
    match Hashtbl.find_opt t.doms b with
    | Some s -> Sset.mem a s
    | None -> false

let idom t b =
  match Hashtbl.find_opt t.doms b with
  | None -> None
  | Some s ->
    if Label.equal b t.entry then None
    else
      (* the strict dominator dominated by every other strict dominator *)
      let strict = Sset.remove b s in
      Sset.fold
        (fun cand acc ->
          match acc with
          | Some _ -> acc
          | None ->
            if
              Sset.for_all
                (fun other ->
                  Label.equal other cand || dominates t other cand)
                strict
            then Some cand
            else None)
        strict None

let dominator_tree t =
  let children = Hashtbl.create 16 in
  Hashtbl.iter
    (fun b _ ->
      match idom t b with
      | Some p ->
        let existing =
          Option.value (Hashtbl.find_opt children p) ~default:[]
        in
        Hashtbl.replace children p (b :: existing)
      | None -> ())
    t.doms;
  Hashtbl.fold
    (fun b _ acc ->
      (b, List.sort compare (Option.value (Hashtbl.find_opt children b) ~default:[]))
      :: acc)
    t.doms []
  |> List.sort compare
