open Bv_isa

type image =
  { code : Instr.t array;
    labels : (Label.t, int) Hashtbl.t;
    entry : int;
    program : Program.t
  }

(* Lowered form of a terminator, given the label of the next block in layout
   order (if any). *)
let lower_term term ~next =
  let needs_jump l =
    match next with Some n when Label.equal n l -> false | _ -> true
  in
  let jump_to l = if needs_jump l then [ Instr.Jump l ] else [] in
  match term with
  | Term.Jump l -> jump_to l
  | Term.Branch { on; src; taken; not_taken; id } ->
    Instr.Branch { on; src; target = taken; id } :: jump_to not_taken
  | Term.Predict { taken; not_taken; id } ->
    Instr.Predict { target = taken; id } :: jump_to not_taken
  | Term.Resolve { on; src; mispredict; fallthrough; predicted_taken; id } ->
    Instr.Resolve { on; src; target = mispredict; predicted_taken; id }
    :: jump_to fallthrough
  | Term.Call { target; return_to = _ } -> [ Instr.Call target ]
  | Term.Ret -> [ Instr.Ret ]
  | Term.Halt -> [ Instr.Halt ]

let block_instrs block ~next =
  block.Block.body @ lower_term block.Block.term ~next

let program prog =
  Validate.check_exn prog;
  let labels = Hashtbl.create 256 in
  let chunks = ref [] in
  let pc = ref 0 in
  List.iter
    (fun p ->
      Hashtbl.replace labels p.Proc.name !pc;
      let rec emit = function
        | [] -> ()
        | b :: rest ->
          let next =
            match rest with
            | nb :: _ -> Some nb.Block.label
            | [] -> None
          in
          Hashtbl.replace labels b.Block.label !pc;
          let instrs = block_instrs b ~next in
          pc := !pc + List.length instrs;
          chunks := instrs :: !chunks;
          emit rest
      in
      emit p.Proc.blocks)
    prog.Program.procs;
  let code = Array.of_list (List.concat (List.rev !chunks)) in
  let entry =
    let main = Program.find_proc prog prog.Program.main in
    Hashtbl.find labels main.Proc.entry
  in
  { code; labels; entry; program = prog }

let static_bytes image = 4 * Array.length image.code

let resolve image l =
  match Hashtbl.find_opt image.labels l with
  | Some pc -> pc
  | None -> raise Not_found

let pp_disassembly ppf image =
  let pc_label = Hashtbl.create 256 in
  Hashtbl.iter
    (fun l pc ->
      let existing = Option.value (Hashtbl.find_opt pc_label pc) ~default:[] in
      Hashtbl.replace pc_label pc (l :: existing))
    image.labels;
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun pc i ->
      (match Hashtbl.find_opt pc_label pc with
      | Some ls ->
        List.iter (fun l -> Format.fprintf ppf "%a:@," Label.pp l) ls
      | None -> ());
      Format.fprintf ppf "  %04d: %a@," pc Instr.pp i)
    image.code;
  Format.fprintf ppf "@]"
