(** Control-flow recovery: rebuild a structured {!Program.t} from a flat
    code image — the front half of a dynamic binary translator (the
    paper's Denver/Crusoe deployment context ingests a guest binary
    exactly this way).

    Leaders are the entry point, every control-flow target, every call's
    return point and every instruction following a terminator. Blocks are
    the maximal straight-line runs between leaders; fall-through edges
    become explicit [Jump] terminators (which {!Layout} re-elides), and
    procedures are split at call targets (the code is assumed
    contiguous per procedure, which {!Layout} guarantees for images it
    produced).

    Round-trip property (tested): for any laid-out program,
    [Layout.program (recover (Layout.program p))] produces the identical
    instruction array. *)

val image : Layout.image -> Program.t
(** Raises [Invalid_argument] on malformed code (e.g. a fall-through past
    the end of the image, or an instruction stream with no entry). *)
