(** Graphviz export of procedure CFGs — handy for inspecting what the
    transformations did ([dot -Tsvg]). *)

val proc : ?bodies:bool -> Format.formatter -> Proc.t -> unit
(** One digraph per procedure. With [bodies] (default true) each node shows
    its instructions; edges are labelled taken/fall/mispredict. *)

val program : ?bodies:bool -> Format.formatter -> Program.t -> unit
(** All procedures as subgraph clusters, with inter-procedure call edges. *)
