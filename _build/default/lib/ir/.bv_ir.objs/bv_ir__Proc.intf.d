lib/ir/proc.mli: Block Bv_isa Format Label
