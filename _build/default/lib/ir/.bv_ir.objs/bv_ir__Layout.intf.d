lib/ir/layout.mli: Bv_isa Format Hashtbl Instr Label Program
