lib/ir/dominators.mli: Bv_isa Label Proc
