lib/ir/dominators.ml: Bv_isa Cfg Hashtbl Label List Option Proc Set String
