lib/ir/cfg.ml: Block Bv_isa Hashtbl Label List Proc Term
