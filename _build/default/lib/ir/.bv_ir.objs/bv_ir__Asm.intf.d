lib/ir/asm.mli: Bv_isa Program
