lib/ir/dot.ml: Block Buffer Bv_isa Format Instr Label List Printf Proc Program String Term
