lib/ir/liveness.ml: Block Bv_isa Hashtbl Instr Label List Option Proc Reg Set Term
