lib/ir/recover.mli: Layout Program
