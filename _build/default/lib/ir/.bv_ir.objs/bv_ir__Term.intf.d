lib/ir/term.mli: Bv_isa Format Label Reg
