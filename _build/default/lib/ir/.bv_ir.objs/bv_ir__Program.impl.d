lib/ir/program.ml: Array Block Bv_isa Format Int Label List Option Printf Proc Term
