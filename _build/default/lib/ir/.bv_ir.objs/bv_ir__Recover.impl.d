lib/ir/recover.ml: Array Block Bv_isa Hashtbl Instr Int Layout List Printf Proc Program Set Term
