lib/ir/block.ml: Bv_isa Format Instr Label List Printf Term
