lib/ir/proc.ml: Block Bv_isa Format Label List Option Printf
