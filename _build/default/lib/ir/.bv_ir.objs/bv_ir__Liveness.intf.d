lib/ir/liveness.mli: Block Bv_isa Label Proc Reg Set
