lib/ir/block.mli: Bv_isa Format Instr Label Reg Term
