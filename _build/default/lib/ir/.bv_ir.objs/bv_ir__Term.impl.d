lib/ir/term.ml: Bv_isa Format Label Reg
