lib/ir/dot.mli: Format Proc Program
