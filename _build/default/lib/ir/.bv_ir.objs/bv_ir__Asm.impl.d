lib/ir/asm.ml: Array Block Buffer Bv_isa Instr List Option Printf Proc Program Reg String Term Validate
