lib/ir/program.mli: Bv_isa Format Label Proc
