lib/ir/layout.ml: Array Block Bv_isa Format Hashtbl Instr Label List Option Proc Program Term Validate
