lib/ir/cfg.mli: Block Bv_isa Hashtbl Label Proc
