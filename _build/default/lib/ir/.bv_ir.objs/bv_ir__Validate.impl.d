lib/ir/validate.ml: Block Bv_isa Hashtbl Label List Printf Proc Program String Term
