open Bv_isa

type segment =
  { base : int;
    contents : int array
  }

type t =
  { procs : Proc.t list;
    main : Label.t;
    segments : segment list;
    mem_words : int
  }

let segment_end s = (s.base / 8) + Array.length s.contents

let make ?(segments = []) ?mem_words ~main procs =
  if not (List.exists (fun p -> Label.equal p.Proc.name main) procs) then
    invalid_arg (Printf.sprintf "Program.make: no procedure named %s" main);
  List.iter
    (fun s ->
      if s.base < 0 || s.base mod 8 <> 0 then
        invalid_arg
          (Printf.sprintf "Program.make: segment base %d not 8-aligned" s.base))
    segments;
  let sorted =
    List.sort (fun a b -> Int.compare a.base b.base) segments
  in
  let rec check_overlap = function
    | a :: (b :: _ as rest) ->
      if segment_end a > b.base / 8 then
        invalid_arg
          (Printf.sprintf "Program.make: segments at %d and %d overlap" a.base
             b.base);
      check_overlap rest
    | [ _ ] | [] -> ()
  in
  check_overlap sorted;
  let needed =
    List.fold_left (fun n s -> max n (segment_end s)) 1 segments
  in
  let mem_words = Option.value mem_words ~default:needed in
  if mem_words < needed then
    invalid_arg
      (Printf.sprintf "Program.make: mem_words %d < segments end %d" mem_words
         needed);
  { procs; main; segments; mem_words }

let find_proc t name =
  List.find (fun p -> Label.equal p.Proc.name name) t.procs

let instr_count t = List.fold_left (fun n p -> n + Proc.instr_count p) 0 t.procs

let initial_memory t =
  let mem = Array.make t.mem_words 0 in
  List.iter
    (fun s -> Array.blit s.contents 0 mem (s.base / 8) (Array.length s.contents))
    t.segments;
  mem

let copy t =
  let copy_block b =
    { Block.label = b.Block.label; body = b.Block.body; term = b.Block.term }
  in
  let copy_proc p =
    { Proc.name = p.Proc.name;
      entry = p.Proc.entry;
      blocks = List.map copy_block p.Proc.blocks
    }
  in
  { t with procs = List.map copy_proc t.procs }

let branch_sites t =
  let sites = ref [] in
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          match Term.branch_site b.Block.term with
          | Some id -> sites := id :: !sites
          | None -> ())
        p.Proc.blocks)
    t.procs;
  List.sort_uniq Int.compare !sites

let pp ppf t =
  Format.fprintf ppf "@[<v>program (main %a, %d data words)" Label.pp t.main
    t.mem_words;
  List.iter (fun p -> Format.fprintf ppf "@,%a" Proc.pp p) t.procs;
  Format.fprintf ppf "@]"
