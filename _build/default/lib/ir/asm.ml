open Bv_isa

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (line, m))) fmt

(* ------------------------------------------------------------- lexical *)

let strip_comment s =
  match String.index_opt s ';' with
  | Some i -> String.sub s 0 i
  | None -> s

let comment_of s =
  match String.index_opt s ';' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> ""

let tokens line s =
  let buf = Buffer.create 8 in
  let out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | ',' -> flush ()
      | '[' | ']' | '+' ->
        (* '+' sticks to 'ld' (speculative marker) but separates in
           addresses; disambiguate by what is in the buffer *)
        if c = '+' && Buffer.contents buf = "ld" then Buffer.add_char buf c
        else begin
          flush ();
          if c <> ' ' then out := String.make 1 c :: !out
        end
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  ignore line;
  List.rev !out

let parse_reg line tok =
  let n = String.length tok in
  if n < 2 || tok.[0] <> 'r' then fail line "expected a register, got %S" tok
  else
    match int_of_string_opt (String.sub tok 1 (n - 1)) with
    | Some i when i >= 0 && i < Reg.count -> Reg.make i
    | _ -> fail line "bad register %S" tok

let parse_int line tok =
  match int_of_string_opt tok with
  | Some v -> v
  | None -> fail line "expected an integer, got %S" tok

let parse_imm line tok =
  if String.length tok > 1 && tok.[0] = '#' then
    parse_int line (String.sub tok 1 (String.length tok - 1))
  else fail line "expected an immediate, got %S" tok

let parse_operand line tok =
  if String.length tok > 0 && tok.[0] = '#' then Instr.Imm (parse_imm line tok)
  else Instr.Reg (parse_reg line tok)

let alu_op_of = function
  | "add" -> Some Instr.Add
  | "sub" -> Some Instr.Sub
  | "and" -> Some Instr.And
  | "or" -> Some Instr.Or
  | "xor" -> Some Instr.Xor
  | "shl" -> Some Instr.Shl
  | "shr" -> Some Instr.Shr
  | "mul" -> Some Instr.Mul
  | _ -> None

let cmp_op_of = function
  | "eq" -> Some Instr.Eq
  | "ne" -> Some Instr.Ne
  | "lt" -> Some Instr.Lt
  | "ge" -> Some Instr.Ge
  | "le" -> Some Instr.Le
  | "gt" -> Some Instr.Gt
  | _ -> None

let site_of_comment ~default comment =
  let words =
    List.filter (( <> ) "") (String.split_on_char ' ' (String.trim comment))
  in
  match words with
  | "site" :: n :: _ -> Option.value (int_of_string_opt n) ~default
  | _ -> default

(* --------------------------------------------------------- instructions *)

let parse_instr line ~site toks =
  let mem_operand = function
    | [ "["; base; "+"; off; "]" ] -> (parse_reg line base, parse_int line off)
    | rest -> fail line "expected [reg + offset], got %s" (String.concat " " rest)
  in
  match toks with
  | [ "nop" ] -> Instr.Nop
  | [ "halt" ] -> Instr.Halt
  | [ "ret" ] -> Instr.Ret
  | [ "jmp"; l ] -> Instr.Jump l
  | [ "call"; l ] -> Instr.Call l
  | [ "predict"; l ] -> Instr.Predict { target = l; id = site }
  | [ "bnz"; src; l ] ->
    Instr.Branch { on = true; src = parse_reg line src; target = l; id = site }
  | [ "bz"; src; l ] ->
    Instr.Branch { on = false; src = parse_reg line src; target = l; id = site }
  | [ "mov"; dst; src ] ->
    Instr.Mov { dst = parse_reg line dst; src = parse_operand line src }
  | ("ld" | "ld+") :: dst :: mem ->
    let base, offset = mem_operand mem in
    Instr.Load
      { dst = parse_reg line dst; base; offset;
        speculative = List.hd toks = "ld+" }
  | "st" :: src :: mem ->
    let base, offset = mem_operand mem in
    Instr.Store { src = parse_reg line src; base; offset }
  | [ op; dst; src1; src2 ] -> (
    let dotted = String.split_on_char '.' op in
    match dotted with
    | [ "cmp"; c ] -> (
      match cmp_op_of c with
      | Some op ->
        Instr.Cmp
          { op; dst = parse_reg line dst; src1 = parse_reg line src1;
            src2 = parse_operand line src2 }
      | None -> fail line "unknown compare %S" op)
    | [ "cmov"; pol ] ->
      let on =
        match pol with
        | "nz" -> true
        | "z" -> false
        | _ -> fail line "cmov polarity must be nz or z"
      in
      Instr.Cmov
        { on; cond = parse_reg line dst; dst = parse_reg line src1;
          src = parse_operand line src2 }
    | [ "resolve"; _; _ ] -> fail line "resolve takes two operands"
    | [ base ] when String.length base > 1 && base.[0] = 'f' -> (
      match alu_op_of (String.sub base 1 (String.length base - 1)) with
      | Some op ->
        Instr.Fpu
          { op; dst = parse_reg line dst; src1 = parse_reg line src1;
            src2 = parse_operand line src2 }
      | None -> fail line "unknown op %S" op)
    | [ base ] -> (
      match alu_op_of base with
      | Some op ->
        Instr.Alu
          { op; dst = parse_reg line dst; src1 = parse_reg line src1;
            src2 = parse_operand line src2 }
      | None -> fail line "unknown op %S" op)
    | _ -> fail line "unknown op %S" op)
  | [ op; src; l ] when String.length op > 8 && String.sub op 0 7 = "resolve"
    -> (
    match String.split_on_char '.' op with
    | [ "resolve"; pol; pred ] ->
      Instr.Resolve
        { on = (pol = "nz");
          src = parse_reg line src;
          target = l;
          predicted_taken = (pred = "pt");
          id = site
        }
    | _ -> fail line "bad resolve opcode %S" op)
  | [] -> fail line "empty instruction"
  | op :: _ -> fail line "cannot parse instruction starting with %S" op

let instruction text =
  let toks = tokens 1 (strip_comment text) in
  parse_instr 1 ~site:(site_of_comment ~default:0 (comment_of text)) toks

(* -------------------------------------------------------------- program *)

type raw_block =
  { rb_label : string;
    rb_line : int;
    mutable rb_instrs : (int * Instr.t) list  (* reversed *)
  }

let program text =
  let lines = String.split_on_char '\n' text in
  let segments = ref [] in
  let mem_words = ref None in
  let main = ref None in
  (* procs as (name, blocks in reverse); blocks as raw *)
  let procs = ref [] in
  let auto_site = ref 800_000 in
  let current_block = ref None in
  let push_block () = current_block := None in
  let add_instr line i =
    match (!procs, !current_block) with
    | _, Some rb -> rb.rb_instrs <- (line, i) :: rb.rb_instrs
    | _ -> fail line "instruction outside a block (missing a label?)"
  in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let text = strip_comment raw in
      let comment = comment_of raw in
      let toks = tokens line text in
      match toks with
      | [] -> ()
      | [ ".memory"; n ] -> mem_words := Some (parse_int line n)
      | ".data" :: base :: words ->
        segments :=
          { Program.base = parse_int line base;
            contents = Array.of_list (List.map (parse_int line) words)
          }
          :: !segments
      | [ ".main"; name ] -> main := Some name
      | [ "proc"; name ] ->
        push_block ();
        procs := (name, ref []) :: !procs
      | [ l ] when String.length l > 1 && l.[String.length l - 1] = ':' -> (
        let label = String.sub l 0 (String.length l - 1) in
        match !procs with
        | [] -> fail line "label %s outside a proc" label
        | (_, blocks) :: _ ->
          let rb = { rb_label = label; rb_line = line; rb_instrs = [] } in
          blocks := rb :: !blocks;
          current_block := Some rb)
      | toks ->
        incr auto_site;
        let site = site_of_comment ~default:!auto_site comment in
        add_instr line (parse_instr line ~site toks))
    lines;
  (* ---- stitch raw blocks into IR blocks with fall-through targets ---- *)
  let build_proc (name, blocks_ref) =
    let raws = List.rev !blocks_ref in
    if raws = [] then fail 0 "proc %s has no blocks" name;
    let arr = Array.of_list raws in
    let blocks =
      Array.to_list
        (Array.mapi
           (fun i rb ->
             let next () =
               if i + 1 < Array.length arr then arr.(i + 1).rb_label
               else
                 fail rb.rb_line "block %s falls through past the end"
                   rb.rb_label
             in
             let instrs = List.rev rb.rb_instrs in
             let rec split acc = function
               | [] -> (List.rev acc, None)
               | [ (_, last) ] when Instr.is_terminator last ->
                 (List.rev acc, Some last)
               | (l, x) :: rest ->
                 if Instr.is_terminator x then
                   fail l "control transfer in the middle of block %s"
                     rb.rb_label
                 else split ((l, x) :: acc) rest
             in
             let body, term_instr = split [] instrs in
             let body = List.map snd body in
             let term =
               match term_instr with
               | None -> Term.Jump (next ())
               | Some (Instr.Jump l) -> Term.Jump l
               | Some (Instr.Branch { on; src; target; id }) ->
                 Term.Branch { on; src; taken = target; not_taken = next (); id }
               | Some (Instr.Predict { target; id }) ->
                 Term.Predict { taken = target; not_taken = next (); id }
               | Some (Instr.Resolve { on; src; target; predicted_taken; id })
                 ->
                 Term.Resolve
                   { on; src; mispredict = target; fallthrough = next ();
                     predicted_taken; id }
               | Some (Instr.Call target) ->
                 Term.Call { target; return_to = next () }
               | Some Instr.Ret -> Term.Ret
               | Some Instr.Halt -> Term.Halt
               | Some i ->
                 fail rb.rb_line "unexpected terminator %s" (Instr.to_string i)
             in
             Block.make ~label:rb.rb_label ~body ~term)
           arr)
    in
    Proc.make ~name blocks
  in
  let procs = List.rev_map build_proc !procs in
  (match procs with
  | [] -> fail 0 "no procedures"
  | _ -> ());
  let main =
    match !main with
    | Some m -> m
    | None -> (List.hd procs).Proc.name
  in
  let p =
    Program.make ~segments:(List.rev !segments) ?mem_words:!mem_words ~main
      procs
  in
  Validate.check_exn p;
  p
