(** Block-level register liveness for a procedure (backward fixpoint).

    Used by the Decomposed Branch Transformation to decide which hoisted
    destinations must be renamed to scratch temporaries: a register that is
    dead at the entry of the alternate successor can be clobbered by
    speculative code for free (the paper's "low register-pressure ...
    obviates the need for temporary registers"). *)

open Bv_isa

module Regset : Set.S with type elt = Reg.t

type t

val compute : ?exit_live:Regset.t -> Proc.t -> t
(** [exit_live] is the set assumed live at [Ret]/[Halt] (defaults to every
    register — conservative for procedures whose results flow to a caller
    through registers). *)

val live_in : t -> Label.t -> Regset.t
(** Registers live at block entry. Unknown labels are treated as having
    everything live (conservative). *)

val live_out : t -> Label.t -> Regset.t

val block_use_def : Block.t -> Regset.t * Regset.t
(** [use] (read before any write, including the terminator's sources) and
    [def] (written anywhere in the body). *)
