(** A basic block: a label, straight-line body, and one terminator. *)

open Bv_isa

type t =
  { label : Label.t;
    mutable body : Instr.t list;  (** non-terminator instructions only *)
    mutable term : Term.t
  }

val make : label:Label.t -> body:Instr.t list -> term:Term.t -> t
(** Raises [Invalid_argument] if [body] contains a terminator instruction. *)

val instr_count : t -> int
(** Body length plus one for the terminator. *)

val load_count : t -> int
(** Number of [Load] instructions in the body. *)

val defs : t -> Reg.t list
(** Registers written anywhere in the body (with duplicates). *)

val pp : Format.formatter -> t -> unit
