(** Linearisation of a program into a flat code image.

    Blocks are emitted in procedure/layout order. A terminator whose
    fall-through successor is the next block in layout order needs no
    explicit [jmp]; otherwise one is appended. Instruction addresses are
    [pc * 4] bytes (fixed-width encodings), which is what the I$ model and
    the static-code-size metric (PISCS) use. *)

open Bv_isa

type image =
  { code : Instr.t array;
    labels : (Label.t, int) Hashtbl.t;
        (** block labels and procedure names -> pc *)
    entry : int;  (** pc of the main procedure's entry block *)
    program : Program.t
  }

val program : Program.t -> image
(** Validates with {!Validate.check_exn}, then lays out. *)

val static_bytes : image -> int
(** Code image size in bytes. *)

val resolve : image -> Label.t -> int
(** Label -> pc. Raises [Not_found]. *)

val pp_disassembly : Format.formatter -> image -> unit
