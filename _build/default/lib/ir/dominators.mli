(** Dominator analysis (iterative dataflow over the CFG).

    Used to sanity-check transformations — e.g. after the Decomposed Branch
    Transformation, the predict block must dominate both resolution blocks
    and each resolution block its commit block — and available as a
    building block for region-formation passes. *)

open Bv_isa

type t

val compute : Proc.t -> t
(** Blocks unreachable from the entry have no dominator information and
    report [dominates = false] for everything except themselves. *)

val dominates : t -> Label.t -> Label.t -> bool
(** [dominates t a b]: every path from the entry to [b] passes through
    [a]. Reflexive. *)

val idom : t -> Label.t -> Label.t option
(** Immediate dominator; [None] for the entry and unreachable blocks. *)

val dominator_tree : t -> (Label.t * Label.t list) list
(** (block, children in the dominator tree), for reachable blocks. *)
