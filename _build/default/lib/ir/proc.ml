open Bv_isa

type t =
  { name : Label.t;
    entry : Label.t;
    mutable blocks : Block.t list
  }

let make ~name ?entry blocks =
  match blocks with
  | [] -> invalid_arg (Printf.sprintf "Proc.make %s: no blocks" name)
  | first :: _ ->
    let entry = Option.value entry ~default:first.Block.label in
    if not (Label.equal entry first.Block.label) then
      invalid_arg
        (Printf.sprintf "Proc.make %s: entry %s is not the first block" name
           entry);
    { name; entry; blocks }

let find_block t label =
  List.find (fun b -> Label.equal b.Block.label label) t.blocks

let block_labels t = List.map (fun b -> b.Block.label) t.blocks

let instr_count t =
  List.fold_left (fun n b -> n + Block.instr_count b) 0 t.blocks

let static_bytes t = 4 * instr_count t

let replace_block t block =
  let found = ref false in
  t.blocks <-
    List.map
      (fun b ->
        if Label.equal b.Block.label block.Block.label then begin
          found := true;
          block
        end
        else b)
      t.blocks;
  if not !found then raise Not_found

let insert_after t label blocks =
  let rec go = function
    | [] -> raise Not_found
    | b :: rest when Label.equal b.Block.label label -> b :: (blocks @ rest)
    | b :: rest -> b :: go rest
  in
  t.blocks <- go t.blocks

let insert_before t label blocks =
  if Label.equal label t.entry then
    invalid_arg "Proc.insert_before: cannot displace the entry block";
  let rec go = function
    | [] -> raise Not_found
    | b :: rest when Label.equal b.Block.label label -> blocks @ (b :: rest)
    | b :: rest -> b :: go rest
  in
  t.blocks <- go t.blocks

let append_blocks t blocks = t.blocks <- t.blocks @ blocks

let pp ppf t =
  Format.fprintf ppf "@[<v 2>proc %a:" Label.pp t.name;
  List.iter (fun b -> Format.fprintf ppf "@,%a" Block.pp b) t.blocks;
  Format.fprintf ppf "@]"
