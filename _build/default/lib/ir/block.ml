open Bv_isa

type t =
  { label : Label.t;
    mutable body : Instr.t list;
    mutable term : Term.t
  }

let make ~label ~body ~term =
  List.iter
    (fun i ->
      if Instr.is_terminator i then
        invalid_arg
          (Printf.sprintf "Block.make %s: terminator %s in body" label
             (Instr.to_string i)))
    body;
  { label; body; term }

let instr_count b = List.length b.body + 1

let load_count b =
  List.fold_left
    (fun n i -> match i with Instr.Load _ -> n + 1 | _ -> n)
    0 b.body

let defs b = List.concat_map Instr.defs b.body

let pp ppf b =
  Format.fprintf ppf "@[<v 2>%a:" Label.pp b.label;
  List.iter (fun i -> Format.fprintf ppf "@,%a" Instr.pp i) b.body;
  Format.fprintf ppf "@,%a@]" Term.pp b.term
