open Bv_isa
module Regset = Set.Make (Reg)

type t =
  { live_in : (Label.t, Regset.t) Hashtbl.t;
    live_out : (Label.t, Regset.t) Hashtbl.t
  }

let all_regs = Regset.of_list Reg.all

let term_uses term =
  match term with
  | Term.Branch { src; _ } | Term.Resolve { src; _ } -> Regset.singleton src
  | Term.Jump _ | Term.Predict _ | Term.Call _ | Term.Ret | Term.Halt ->
    Regset.empty

let block_use_def block =
  let use = ref Regset.empty in
  let def = ref Regset.empty in
  List.iter
    (fun i ->
      List.iter
        (fun r -> if not (Regset.mem r !def) then use := Regset.add r !use)
        (Instr.uses i);
      List.iter (fun r -> def := Regset.add r !def) (Instr.defs i))
    block.Block.body;
  Regset.iter
    (fun r -> if not (Regset.mem r !def) then use := Regset.add r !use)
    (term_uses block.Block.term);
  (!use, !def)

let compute ?(exit_live = all_regs) proc =
  let blocks = proc.Proc.blocks in
  let use_def = Hashtbl.create 64 in
  List.iter
    (fun b -> Hashtbl.replace use_def b.Block.label (block_use_def b))
    blocks;
  let live_in = Hashtbl.create 64 in
  let live_out = Hashtbl.create 64 in
  List.iter
    (fun b ->
      Hashtbl.replace live_in b.Block.label Regset.empty;
      Hashtbl.replace live_out b.Block.label Regset.empty)
    blocks;
  let lookup_in l =
    Option.value (Hashtbl.find_opt live_in l) ~default:Regset.empty
  in
  let changed = ref true in
  while !changed do
    changed := false;
    (* reverse order converges faster for mostly-forward CFGs *)
    List.iter
      (fun b ->
        let l = b.Block.label in
        let out =
          match b.Block.term with
          | Term.Ret | Term.Halt -> exit_live
          | Term.Call _ ->
            (* conservative: the callee may read anything, and control
               returns to the successor *)
            Regset.union exit_live
              (List.fold_left
                 (fun acc s -> Regset.union acc (lookup_in s))
                 Regset.empty
                 (Term.successors b.Block.term))
          | _ ->
            List.fold_left
              (fun acc s -> Regset.union acc (lookup_in s))
              Regset.empty
              (Term.successors b.Block.term)
        in
        let use, def = Hashtbl.find use_def l in
        let inn = Regset.union use (Regset.diff out def) in
        if not (Regset.equal inn (lookup_in l)) then begin
          Hashtbl.replace live_in l inn;
          changed := true
        end;
        Hashtbl.replace live_out l out)
      (List.rev blocks)
  done;
  { live_in; live_out }

let live_in t l = Option.value (Hashtbl.find_opt t.live_in l) ~default:all_regs
let live_out t l =
  Option.value (Hashtbl.find_opt t.live_out l) ~default:all_regs
