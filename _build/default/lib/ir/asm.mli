(** A textual assembler for the hidden ISA.

    The accepted syntax is the disassembler's output plus a few directives,
    so hand-written kernels and round-tripped dumps share one format:

    {v
    ; comments run to end of line
    .memory 64              ; data size in 8-byte words (optional)
    .data 0 1 0 1 1         ; a segment: base byte address, then words
    .main main              ; entry procedure (defaults to the first)

    proc main
    entry:
      mov   r1, #0
      jmp   head
    head:
      ld    r4, [r2 + 0]    ; ld+ is a speculative (non-faulting) load
      cmp.ne r5, r4, #0
      bnz   r5, then        ; site 3   <- optional static branch id
    else:                   ; the fall-through successor is the next block
      add   r6, r6, #1
    ...
    v}

    Blocks end at the next label; a block whose last instruction is not a
    control transfer falls through to the following block (an explicit
    [jmp] is synthesised, which layout elides again). Conditional control
    flow takes its not-taken/fall-through successor from the next block in
    the file, and [call]s return to it. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val program : string -> Program.t
(** Parse and validate a whole program. *)

val instruction : string -> Bv_isa.Instr.t
(** Parse a single instruction line (no labels/directives). Control-flow
    targets stay symbolic. Raises {!Parse_error}. *)
