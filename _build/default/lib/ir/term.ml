open Bv_isa

type t =
  | Jump of Label.t
  | Branch of
      { on : bool;
        src : Reg.t;
        taken : Label.t;
        not_taken : Label.t;
        id : int }
  | Predict of { taken : Label.t; not_taken : Label.t; id : int }
  | Resolve of
      { on : bool;
        src : Reg.t;
        mispredict : Label.t;
        fallthrough : Label.t;
        predicted_taken : bool;
        id : int }
  | Call of { target : Label.t; return_to : Label.t }
  | Ret
  | Halt

let successors = function
  | Jump l -> [ l ]
  | Branch { taken; not_taken; _ } -> [ taken; not_taken ]
  | Predict { taken; not_taken; _ } -> [ taken; not_taken ]
  | Resolve { mispredict; fallthrough; _ } -> [ mispredict; fallthrough ]
  | Call { return_to; _ } -> [ return_to ]
  | Ret | Halt -> []

let fallthrough_successor = function
  | Jump l -> Some l
  | Branch { not_taken; _ } -> Some not_taken
  | Predict { not_taken; _ } -> Some not_taken
  | Resolve { fallthrough; _ } -> Some fallthrough
  | Call { return_to; _ } -> Some return_to
  | Ret | Halt -> None

let branch_site = function
  | Branch { id; _ } -> Some id
  | Jump _ | Predict _ | Resolve _ | Call _ | Ret | Halt -> None

let map_labels f = function
  | Jump l -> Jump (f l)
  | Branch b -> Branch { b with taken = f b.taken; not_taken = f b.not_taken }
  | Predict p ->
    Predict { p with taken = f p.taken; not_taken = f p.not_taken }
  | Resolve r ->
    Resolve
      { r with mispredict = f r.mispredict; fallthrough = f r.fallthrough }
  | Call c -> Call { target = f c.target; return_to = f c.return_to }
  | (Ret | Halt) as t -> t

let pp ppf = function
  | Jump l -> Format.fprintf ppf "jmp %a" Label.pp l
  | Branch { on; src; taken; not_taken; id } ->
    Format.fprintf ppf "b%s %a -> %a / %a  ; site %d"
      (if on then "nz" else "z")
      Reg.pp src Label.pp taken Label.pp not_taken id
  | Predict { taken; not_taken; id } ->
    Format.fprintf ppf "predict -> %a / %a  ; site %d" Label.pp taken Label.pp
      not_taken id
  | Resolve { on; src; mispredict; fallthrough; predicted_taken; id } ->
    Format.fprintf ppf "resolve.%s%s %a -> miss:%a / %a  ; site %d"
      (if on then "nz" else "z")
      (if predicted_taken then ".pt" else ".pnt")
      Reg.pp src Label.pp mispredict Label.pp fallthrough id
  | Call { target; return_to } ->
    Format.fprintf ppf "call %a (ret %a)" Label.pp target Label.pp return_to
  | Ret -> Format.pp_print_string ppf "ret"
  | Halt -> Format.pp_print_string ppf "halt"
