(** A procedure: an entry label and its blocks, kept in preferred layout
    order. *)

open Bv_isa

type t =
  { name : Label.t;
    entry : Label.t;
    mutable blocks : Block.t list  (** layout order; entry must be first *)
  }

val make : name:Label.t -> ?entry:Label.t -> Block.t list -> t
(** [make ~name blocks] builds a procedure. [entry] defaults to the label of
    the first block. Raises [Invalid_argument] on an empty block list or if
    [entry] is not the first block's label. *)

val find_block : t -> Label.t -> Block.t
(** Raises [Not_found]. *)

val block_labels : t -> Label.t list

val instr_count : t -> int

val static_bytes : t -> int
(** Code size assuming fixed 4-byte encodings and one emitted jump for every
    terminator (an upper bound; {!Layout.program} reports the exact size of
    the laid-out image). *)

val replace_block : t -> Block.t -> unit
(** Replace the block with the same label. Raises [Not_found]. *)

val insert_after : t -> Label.t -> Block.t list -> unit
(** Insert blocks immediately after the named block in layout order. *)

val insert_before : t -> Label.t -> Block.t list -> unit
(** Insert blocks immediately before the named block. Raises
    [Invalid_argument] when the named block is the entry (the entry must
    stay first). *)

val append_blocks : t -> Block.t list -> unit
(** Append blocks at the end of the layout (cold section). *)

val pp : Format.formatter -> t -> unit
