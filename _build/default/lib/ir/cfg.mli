(** Control-flow graph utilities over a procedure. *)

open Bv_isa

val successors : Proc.t -> Block.t -> Label.t list
(** Intra-procedural successor labels of a block. *)

val predecessor_map : Proc.t -> (Label.t, Label.t list) Hashtbl.t
(** Map from block label to the labels of its predecessors. *)

val block_position : Proc.t -> (Label.t, int) Hashtbl.t
(** Map from block label to its index in layout order. *)

val reverse_postorder : Proc.t -> Label.t list
(** Blocks reachable from the entry, in reverse postorder. *)

val is_forward_branch : Proc.t -> Block.t -> bool
(** True if the block ends in a conditional [Branch] whose taken target lies
    strictly later in layout order (i.e. a non-loop branch; backward-taken
    branches are loop branches, which the paper leaves to loop
    transformations). *)
