open Bv_isa

let successors _proc block = Term.successors block.Block.term

let predecessor_map proc =
  let preds = Hashtbl.create 64 in
  List.iter
    (fun b -> Hashtbl.replace preds b.Block.label [])
    proc.Proc.blocks;
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt preds s with
          | Some ps -> Hashtbl.replace preds s (b.Block.label :: ps)
          | None -> ())
        (Term.successors b.Block.term))
    proc.Proc.blocks;
  preds

let block_position proc =
  let pos = Hashtbl.create 64 in
  List.iteri (fun i b -> Hashtbl.replace pos b.Block.label i) proc.Proc.blocks;
  pos

let reverse_postorder proc =
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let rec visit label =
    if not (Hashtbl.mem visited label) then begin
      Hashtbl.replace visited label ();
      (match
         List.find_opt
           (fun b -> Label.equal b.Block.label label)
           proc.Proc.blocks
       with
      | Some b -> List.iter visit (Term.successors b.Block.term)
      | None -> ());
      order := label :: !order
    end
  in
  visit proc.Proc.entry;
  !order

let is_forward_branch proc block =
  match block.Block.term with
  | Term.Branch { taken; _ } ->
    let pos = block_position proc in
    (match
       (Hashtbl.find_opt pos block.Block.label, Hashtbl.find_opt pos taken)
     with
    | Some here, Some there -> there > here
    | _ -> false)
  | Term.Jump _ | Term.Predict _ | Term.Resolve _ | Term.Call _ | Term.Ret
  | Term.Halt ->
    false
