open Bv_isa
open Bv_ir

exception Fault of string

type state =
  { regs : int array;
    mem : int array;
    mutable pc : int;
    mutable halted : bool;
    mutable instr_count : int;
    mutable load_count : int;
    mutable store_count : int;
    call_stack : int Stack.t
  }

let init image =
  { regs = Array.make Reg.count 0;
    mem = Program.initial_memory image.Layout.program;
    pc = image.Layout.entry;
    halted = false;
    instr_count = 0;
    load_count = 0;
    store_count = 0;
    call_stack = Stack.create ()
  }

type hooks =
  { on_branch : id:int -> pc:int -> taken:bool -> unit;
    on_resolve : id:int -> pc:int -> mispredicted:bool -> taken:bool -> unit
  }

let no_hooks =
  { on_branch = (fun ~id:_ ~pc:_ ~taken:_ -> ());
    on_resolve = (fun ~id:_ ~pc:_ ~mispredicted:_ ~taken:_ -> ())
  }

let operand_value regs = function
  | Instr.Reg r -> regs.(Reg.index r)
  | Instr.Imm i -> i

let load_word state ~addr ~speculative =
  if addr land 7 <> 0 || addr < 0 || addr / 8 >= Array.length state.mem then
    if speculative then 0
    else raise (Fault (Printf.sprintf "load from invalid address %d" addr))
  else state.mem.(addr / 8)

let store_word state ~addr v =
  if addr land 7 <> 0 || addr < 0 || addr / 8 >= Array.length state.mem then
    raise (Fault (Printf.sprintf "store to invalid address %d" addr))
  else state.mem.(addr / 8) <- v

let step ?(hooks = no_hooks) ?(predict_policy = fun ~pc:_ ~id:_ -> false) image
    state =
  if not state.halted then begin
    let code = image.Layout.code in
    if state.pc < 0 || state.pc >= Array.length code then
      raise (Fault (Printf.sprintf "pc %d out of code bounds" state.pc));
    let regs = state.regs in
    let set r v = regs.(Reg.index r) <- v in
    let get r = regs.(Reg.index r) in
    let target_pc l = Layout.resolve image l in
    let pc = state.pc in
    state.instr_count <- state.instr_count + 1;
    let next = pc + 1 in
    (match code.(pc) with
    | Instr.Nop -> state.pc <- next
    | Instr.Alu { op; dst; src1; src2 } | Instr.Fpu { op; dst; src1; src2 } ->
      set dst (Instr.eval_alu op (get src1) (operand_value regs src2));
      state.pc <- next
    | Instr.Mov { dst; src } ->
      set dst (operand_value regs src);
      state.pc <- next
    | Instr.Load { dst; base; offset; speculative } ->
      state.load_count <- state.load_count + 1;
      set dst (load_word state ~addr:(get base + offset) ~speculative);
      state.pc <- next
    | Instr.Store { src; base; offset } ->
      state.store_count <- state.store_count + 1;
      store_word state ~addr:(get base + offset) (get src);
      state.pc <- next
    | Instr.Cmp { op; dst; src1; src2 } ->
      set dst
        (Bool.to_int (Instr.eval_cmp op (get src1) (operand_value regs src2)));
      state.pc <- next
    | Instr.Cmov { on; cond; dst; src } ->
      if (get cond <> 0) = on then set dst (operand_value regs src);
      state.pc <- next
    | Instr.Branch { on; src; target; id } ->
      let taken = (get src <> 0) = on in
      hooks.on_branch ~id ~pc ~taken;
      state.pc <- (if taken then target_pc target else next)
    | Instr.Jump target -> state.pc <- target_pc target
    | Instr.Call target ->
      Stack.push next state.call_stack;
      state.pc <- target_pc target
    | Instr.Ret ->
      (match Stack.pop_opt state.call_stack with
      | Some ra -> state.pc <- ra
      | None -> raise (Fault "ret with empty call stack"))
    | Instr.Predict { target; id } ->
      state.pc <- (if predict_policy ~pc ~id then target_pc target else next)
    | Instr.Resolve { on; src; target; predicted_taken; id } ->
      let taken = (get src <> 0) = on in
      let mispredicted = taken <> predicted_taken in
      hooks.on_resolve ~id ~pc ~mispredicted ~taken;
      state.pc <- (if mispredicted then target_pc target else next)
    | Instr.Halt -> state.halted <- true)
  end

let run ?hooks ?predict_policy ?(max_instrs = 100_000_000) image =
  let state = init image in
  let rec go () =
    if (not state.halted) && state.instr_count < max_instrs then begin
      step ?hooks ?predict_policy image state;
      go ()
    end
  in
  go ();
  state

let fnv_fold acc v =
  let acc = (acc lxor v) * 0x100000001B3 in
  acc land max_int

let mem_digest state = Array.fold_left fnv_fold 0xcbf29ce4 state.mem
let reg_digest state = Array.fold_left fnv_fold 0xcbf29ce4 state.regs

let arch_digest state = fnv_fold (mem_digest state) state.store_count
