lib/exec/interp.ml: Array Bool Bv_ir Bv_isa Instr Layout Printf Program Reg Stack
