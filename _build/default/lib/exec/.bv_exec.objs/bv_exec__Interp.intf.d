lib/exec/interp.mli: Bv_ir Layout Stack
