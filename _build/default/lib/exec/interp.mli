(** Architectural reference interpreter for laid-out programs.

    Decomposed branches make the {e prediction} direction architecturally
    irrelevant: whatever direction a [predict] takes, the [resolve] on that
    path redirects control if the prediction disagreed with the condition,
    so the final state must be identical. [run]'s [predict_policy] lets
    tests drive the predict decisions arbitrarily and check exactly that. *)

open Bv_ir

exception Fault of string
(** Raised for architectural faults: unaligned or out-of-range non-
    speculative memory access, return with empty call stack, PC out of
    code bounds. Speculative loads never fault — they return 0 instead. *)

type state =
  { regs : int array;
    mem : int array;
    mutable pc : int;
    mutable halted : bool;
    mutable instr_count : int;
    mutable load_count : int;
    mutable store_count : int;
    call_stack : int Stack.t
  }

val init : Layout.image -> state
(** Fresh state at the image entry with segment-initialised memory. *)

type hooks =
  { on_branch : id:int -> pc:int -> taken:bool -> unit;
        (** called for every executed [Branch] *)
    on_resolve : id:int -> pc:int -> mispredicted:bool -> taken:bool -> unit
        (** called for every executed [Resolve]; [taken] is the original
            branch outcome *)
  }

val no_hooks : hooks

val step :
  ?hooks:hooks ->
  ?predict_policy:(pc:int -> id:int -> bool) ->
  Layout.image ->
  state ->
  unit
(** Execute one instruction. No-op when halted. *)

val run :
  ?hooks:hooks ->
  ?predict_policy:(pc:int -> id:int -> bool) ->
  ?max_instrs:int ->
  Layout.image ->
  state
(** Run from a fresh state until [Halt] or [max_instrs] (default 100M)
    instructions. [predict_policy] defaults to always-false. *)

val mem_digest : state -> int
(** Order-independent FNV-style digest of the memory image. *)

val reg_digest : state -> int

val arch_digest : state -> int
(** Digest of memory plus the store count — what a correctness oracle
    compares between a program and its transformed version. Registers are
    deliberately excluded: the transformation introduces scratch
    temporaries (and re-executes condition slices in correction blocks),
    so dead register values may differ while all memory effects agree. *)
