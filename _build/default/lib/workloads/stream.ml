(* Base pattern of period [p] with [k] takens, spread evenly (Bresenham) so
   that short-history predictors can learn it. *)
let base_pattern ~period ~taken_rate =
  let k =
    Float.to_int (Float.round (taken_rate *. Float.of_int period))
  in
  let k = max 0 (min period k) in
  Array.init period (fun i -> (i * k) mod period < k)

let noise_for ~taken_rate ~predictability =
  (* A replacement draw is Bernoulli(taken_rate); it disagrees with a
     pattern element with probability close to the pattern's duty-cycle
     mix. We solve for q in  accuracy = 1 - q * p_disagree. *)
  let b = taken_rate in
  let p_disagree = (b *. (1.0 -. b)) +. ((1.0 -. b) *. b) in
  let p_disagree = Float.max 0.05 p_disagree in
  let q = (1.0 -. predictability) /. p_disagree in
  Float.max 0.0 (Float.min 1.0 q)

let sequence ?(period = 8) ?noise ~rng ~taken_rate ~predictability ~length ()
    =
  if taken_rate < 0.0 || taken_rate > 1.0 then
    invalid_arg "Stream.sequence: taken_rate out of [0,1]";
  if predictability < 0.0 || predictability > 1.0 then
    invalid_arg "Stream.sequence: predictability out of [0,1]";
  if length <= 0 then invalid_arg "Stream.sequence: length <= 0";
  if period <= 0 then invalid_arg "Stream.sequence: period <= 0";
  let pattern = base_pattern ~period ~taken_rate in
  let q =
    match noise with
    | Some q -> Float.max 0.0 (Float.min 1.0 q)
    | None -> noise_for ~taken_rate ~predictability
  in
  Array.init length (fun i ->
      if Rng.bernoulli rng q then Rng.bernoulli rng taken_rate
      else pattern.(i mod period))

let to_words seq = Array.map Bool.to_int seq
