type t = { mutable state : int }

let create ~seed = { state = (seed * 2 + 1) land max_int }

let next t =
  (* splitmix64 constants truncated to OCaml's 63-bit int range *)
  t.state <- (t.state + 0x1E3779B97F4A7C15) land max_int;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB land max_int in
  (z lxor (z lsr 31)) land max_int

let float t = Float.of_int (next t) /. Float.of_int max_int
let below t n = next t mod n
let bernoulli t p = float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = below t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
