open Bv_isa
open Bv_ir

(* Register roles. Scratch temporaries r48-r63 are reserved for the
   transformation (Vanguard.Transform.default_temp_pool). *)
let r_i = Reg.make 1 (* inner induction variable *)
let r_ioff = Reg.make 2 (* i * 8 *)
let r_n = Reg.make 3
let r_cond = Reg.make 4
let r_cc = Reg.make 5
let r_acc = Reg.make 6
let r_facc = Reg.make 7
let r_seq = Reg.make 8 (* sequential data cursor, byte offset *)
let r_rnd = Reg.make 9 (* LCG state for pointer-chase accesses *)
let r_data = Reg.make 10 (* data array base, byte address *)
let r_addr = Reg.make 11
let r_outer = Reg.make 21
let r_reps = Reg.make 22
let r_t = Reg.make 23

(* Dedicated registers for the condition's pointer-chase dependence, kept
   disjoint from the block-work registers so the condition slice can be
   sunk without register conflicts. *)
let r_cchase_v = Reg.make 24
let r_cchase_a = Reg.make 25
let r_crnd = Reg.make 26
let load_dest k = Reg.make (12 + (k mod 8))

(* Per-worker global iteration counters: index the packed condition stream
   across outer repetitions, so condition noise is never replayed (a frozen
   noise sequence would be learnable by the predictors). *)
let gi_reg p = Reg.make (32 + min p 7)

(* Rotating accumulator pools: consecutive sites accumulate into different
   registers, so the consume chains of neighbouring blocks overlap instead
   of serialising the whole program on one register. *)
let acc_pool = [| Reg.make 6; Reg.make 27; Reg.make 28; Reg.make 29 |]
let facc_pool = [| Reg.make 7; Reg.make 30; Reg.make 31 |]
let acc_of k = acc_pool.(k mod Array.length acc_pool)
let facc_of k = facc_pool.(k mod Array.length facc_pool)

let live_at_exit =
  Array.to_list acc_pool @ Array.to_list facc_pool
  @ [ r_rnd; r_crnd; r_data; r_outer; r_reps ]
  @ List.init 8 gi_reg

let lcg_mul = 2862933555777941757
let lcg_add = 3037000493

type site =
  { id : int;
    taken_rate : float;
    predictability : float;
    period : int;
    iid : bool;
    bit : int  (* bit plane of this site in the packed condition stream *)
  }

let site_count spec = Spec.total_sites spec

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let clamp lo hi v = Float.max lo (Float.min hi v)

(* Expand the class population into per-site parameters. The site order is
   input-independent (the static code must be the same binary for every
   input); only the per-input perturbation of bias/predictability uses the
   data rng (REF inputs shift branch behaviour, not code). *)
let expand_sites ~code_rng ~data_rng ~input spec =
  let sites =
    List.concat_map
      (fun c ->
        List.init c.Spec.count (fun _ ->
            ( c.Spec.taken_rate,
              c.Spec.predictability,
              c.Spec.period,
              c.Spec.iid )))
      spec.Spec.branch_classes
  in
  let arr = Array.of_list sites in
  Rng.shuffle code_rng arr;
  Array.map
    (fun (rate, pred, period, iid) ->
      if input = 0 then (rate, pred, period, iid)
      else
        let jr = (Rng.float data_rng -. 0.5) *. 0.08 in
        let jp = (Rng.float data_rng -. 0.5) *. 0.03 in
        ( clamp 0.02 0.98 (rate +. jr),
          clamp 0.5 0.999 (pred +. jp),
          period,
          iid ))
    arr

(* Emit a chunk of data-array work: a sequential-cursor address, a mix of
   sequential and pointer-chase loads, cursor advance, and consuming ALU/FP
   work. Shared by hammock successor blocks and by A-block filler. *)
let data_work ~rng ~spec ~gi ~acc ~acc2 ~facc ~facc2 ~salt ~n_loads ~n_alu
    ~data_mask_bytes ~data_words =
  let s = spec in
  let instrs = ref [] in
  let emit i = instrs := i :: !instrs in
  (* Block-local window into the data array, derived from the iteration
     counter: consecutive iterations touch consecutive lines (sequential
     locality) and there is no loop-carried cursor chain serialising
     unrelated blocks. [salt] spreads different blocks' windows apart. *)
  if n_loads > 0 then begin
    emit (Instr.Alu { op = Instr.Shl; dst = r_addr; src1 = gi;
                      src2 = Instr.Imm 6 });
    emit (Instr.Alu { op = Instr.Add; dst = r_addr; src1 = r_addr;
                      src2 = Instr.Imm (salt * 4104) });
    emit (Instr.Alu { op = Instr.And; dst = r_addr; src1 = r_addr;
                      src2 = Instr.Imm data_mask_bytes });
    emit (Instr.Alu { op = Instr.Add; dst = r_addr; src1 = r_addr;
                      src2 = Instr.Reg r_data })
  end;
  let dests = ref [] in
  for k = 0 to n_loads - 1 do
    let d = load_dest (k + salt) in
    dests := d :: !dests;
    if Rng.bernoulli rng s.Spec.chase_frac then begin
      emit (Instr.Alu { op = Instr.Mul; dst = r_rnd; src1 = r_rnd;
                        src2 = Instr.Imm lcg_mul });
      emit (Instr.Alu { op = Instr.Add; dst = r_rnd; src1 = r_rnd;
                        src2 = Instr.Imm lcg_add });
      emit (Instr.Alu { op = Instr.Shr; dst = r_t; src1 = r_rnd;
                        src2 = Instr.Imm 20 });
      emit (Instr.Alu { op = Instr.And; dst = r_t; src1 = r_t;
                        src2 = Instr.Imm (data_words - 1) });
      emit (Instr.Alu { op = Instr.Shl; dst = r_t; src1 = r_t;
                        src2 = Instr.Imm 3 });
      emit (Instr.Alu { op = Instr.Add; dst = r_t; src1 = r_t;
                        src2 = Instr.Reg r_data });
      emit (Instr.Load { dst = d; base = r_t; offset = 0; speculative = false })
    end
    else
      emit
        (Instr.Load { dst = d; base = r_addr; offset = 8 * k;
                      speculative = false })
  done;
  (* Consume alternates between two accumulators of each kind, halving the
     serial dependence chain through the block. *)
  List.iteri
    (fun k d ->
      if Rng.float rng < s.Spec.fp_mix then begin
        let f = if k land 1 = 0 then facc else facc2 in
        emit (Instr.Fpu { op = Instr.Add; dst = f; src1 = f;
                          src2 = Instr.Reg d })
      end
      else begin
        let a = if k land 1 = 0 then acc else acc2 in
        emit (Instr.Alu { op = (if k land 2 = 2 then Instr.Xor else Instr.Add);
                          dst = a; src1 = a; src2 = Instr.Reg d })
      end)
    (List.rev !dests);
  for k = 0 to n_alu - 1 do
    if Rng.float rng < s.Spec.fp_mix then begin
      let f = if k land 1 = 0 then facc2 else facc in
      emit (Instr.Fpu { op = Instr.Mul; dst = f; src1 = f;
                        src2 = Instr.Imm (3 + k) })
    end
    else begin
      let a = if k land 1 = 0 then acc2 else acc in
      emit (Instr.Alu { op = Instr.Add; dst = a; src1 = a;
                        src2 = Instr.Imm (1 + k) })
    end
  done;
  List.rev !instrs

let sample_loads ~rng mean =
  let base = Float.to_int mean in
  let frac = mean -. Float.of_int base in
  base + if Rng.bernoulli rng frac then 1 else 0

(* One successor block of a hammock, with a store placed to realise the
   spec's hoistable fraction. [flavor] differentiates the two paths. *)
let work_block ~rng ~spec ~site_idx ~flavor ~gi ~data_mask_bytes ~data_words
    ~chk_offset ~label ~next =
  let s = spec in
  let n_loads =
    max 1
      (sample_loads ~rng s.Spec.loads_per_block
      + if flavor = `Taken then 1 else 0)
  in
  let n_alu = s.Spec.extra_alu + if flavor = `Taken then 1 else 0 in
  let acc = acc_of site_idx
  and acc2 = acc_of (site_idx + 1)
  and facc = facc_of site_idx
  and facc2 = facc_of (site_idx + 1) in
  let salt = (site_idx * 2) + if flavor = `Taken then 1 else 0 in
  let body_no_store =
    data_work ~rng ~spec ~gi ~acc ~acc2 ~facc ~facc2 ~salt ~n_loads ~n_alu
      ~data_mask_bytes ~data_words
  in
  let store = Instr.Store { src = acc; base = r_data; offset = chk_offset } in
  let len = List.length body_no_store in
  let store_pos =
    min len (Float.to_int (s.Spec.hoist_frac *. Float.of_int (len + 1)))
  in
  let rec insert k rest =
    match rest with
    | _ when k = 0 -> store :: rest
    | [] -> [ store ]
    | x :: tail -> x :: insert (k - 1) tail
  in
  Block.make ~label ~body:(insert store_pos body_no_store)
    ~term:(Term.Jump next)

(* The A block of a site: condition load from the stream, an optional
   pointer-chase dependence (value-neutral), a dependent ALU chain of
   [cond_depth], the compare + branch, plus optional independent filler
   work ([a_loads]/[a_alu]) modelling large basic blocks. The first site of
   an iteration also materialises i*8. *)
let site_a_block ~rng ~spec ~site ~first ~gi ~data_mask_bytes ~data_words
    ~label ~b_label ~c_label =
  let body = ref [] in
  let emit i = body := i :: !body in
  if first then
    emit (Instr.Alu { op = Instr.Shl; dst = r_ioff; src1 = gi;
                      src2 = Instr.Imm 3 });
  (* Conditions are packed one word per iteration, one bit plane per
     site: a single hot line serves every site of the iteration. *)
  emit
    (Instr.Load { dst = r_cond; base = r_ioff; offset = 0;
                  speculative = false });
  emit (Instr.Alu { op = Instr.Shr; dst = r_cond; src1 = r_cond;
                    src2 = Instr.Imm site.bit });
  emit (Instr.Alu { op = Instr.And; dst = r_cond; src1 = r_cond;
                    src2 = Instr.Imm 1 });
  if spec.Spec.cond_chase then begin
    (* A potentially-missing load whose value is masked to zero before
       joining the condition: dataflow dependence with no value change. *)
    emit (Instr.Alu { op = Instr.Mul; dst = r_crnd; src1 = r_crnd;
                      src2 = Instr.Imm lcg_mul });
    emit (Instr.Alu { op = Instr.Add; dst = r_crnd; src1 = r_crnd;
                      src2 = Instr.Imm lcg_add });
    emit (Instr.Alu { op = Instr.Shr; dst = r_cchase_a; src1 = r_crnd;
                      src2 = Instr.Imm 20 });
    emit (Instr.Alu { op = Instr.And; dst = r_cchase_a; src1 = r_cchase_a;
                      src2 = Instr.Imm (data_words - 1) });
    emit (Instr.Alu { op = Instr.Shl; dst = r_cchase_a; src1 = r_cchase_a;
                      src2 = Instr.Imm 3 });
    emit (Instr.Alu { op = Instr.Add; dst = r_cchase_a; src1 = r_cchase_a;
                      src2 = Instr.Reg r_data });
    emit (Instr.Load { dst = r_cchase_v; base = r_cchase_a; offset = 0;
                       speculative = false });
    emit (Instr.Alu { op = Instr.And; dst = r_cchase_v; src1 = r_cchase_v;
                      src2 = Instr.Imm 0 });
    emit (Instr.Alu { op = Instr.Add; dst = r_cond; src1 = r_cond;
                      src2 = Instr.Reg r_cchase_v })
  end;
  for k = 0 to spec.Spec.cond_depth - 1 do
    emit (Instr.Alu { op = (if k mod 2 = 0 then Instr.Add else Instr.Xor);
                      dst = r_cond; src1 = r_cond; src2 = Instr.Imm 0 })
  done;
  emit (Instr.Cmp { op = Instr.Ne; dst = r_cc; src1 = r_cond;
                    src2 = Instr.Imm 0 });
  (* Independent filler after the condition slice: the scheduler will
     interleave it, covering resolution latency in the baseline. *)
  let filler =
    data_work ~rng ~spec ~gi ~acc:(acc_of (site.bit + 1))
      ~acc2:(acc_of (site.bit + 2))
      ~facc:(facc_of (site.bit + 1))
      ~facc2:(facc_of (site.bit + 2))
      ~salt:(40 + site.bit)
      ~n_loads:(sample_loads ~rng spec.Spec.a_loads)
      ~n_alu:spec.Spec.a_alu ~data_mask_bytes ~data_words
  in
  Block.make ~label
    ~body:(List.rev_append !body filler)
    ~term:
      (Term.Branch
         { on = true; src = r_cc; taken = c_label; not_taken = b_label;
           id = site.id })

let worker_proc ~rng ~spec ~name ~latch_id ~trip ~gi ~sites ~data_mask_bytes
    ~data_words ~chk_base_off =
  let head = name ^ ".head" in
  let latch = name ^ ".latch" in
  let out = name ^ ".out" in
  let entry =
    Block.make ~label:(name ^ ".entry")
      ~body:[ Instr.Mov { dst = r_i; src = Instr.Imm 0 } ]
      ~term:(Term.Jump head)
  in
  let n_sites = Array.length sites in
  let a_label k = Printf.sprintf "%s.s%d.a" name k in
  let site_blocks =
    List.concat
      (List.init n_sites (fun k ->
           let site = sites.(k) in
           let next = if k = n_sites - 1 then latch else a_label (k + 1) in
           let b_label = Printf.sprintf "%s.s%d.b" name k in
           let c_label = Printf.sprintf "%s.s%d.c" name k in
           let a =
             site_a_block ~rng ~spec ~site ~first:(k = 0) ~gi ~data_mask_bytes
               ~data_words
               ~label:(if k = 0 then head else a_label k)
               ~b_label ~c_label
           in
           let b =
             work_block ~rng ~spec ~site_idx:k ~flavor:`Not_taken ~gi
               ~data_mask_bytes ~data_words
               ~chk_offset:(chk_base_off + (((site.id * 2) + 0) * 8))
               ~label:b_label ~next
           in
           let c =
             work_block ~rng ~spec ~site_idx:k ~flavor:`Taken ~gi
               ~data_mask_bytes ~data_words
               ~chk_offset:(chk_base_off + (((site.id * 2) + 1) * 8))
               ~label:c_label ~next
           in
           [ a; b; c ]))
  in
  let latch_block =
    Block.make ~label:latch
      ~body:
        [ Instr.Alu { op = Instr.Add; dst = r_i; src1 = r_i;
                      src2 = Instr.Imm 1 };
          Instr.Alu { op = Instr.Add; dst = gi; src1 = gi;
                      src2 = Instr.Imm 1 };
          Instr.Cmp { op = Instr.Lt; dst = r_cc; src1 = r_i;
                      src2 = Instr.Imm trip }
        ]
      ~term:
        (Term.Branch
           { on = true; src = r_cc; taken = head; not_taken = out;
             id = latch_id })
  in
  let out_block = Block.make ~label:out ~body:[] ~term:Term.Ret in
  Proc.make ~name ((entry :: site_blocks) @ [ latch_block; out_block ])

let generate ?(input = 0) spec =
  (* Code structure depends only on the benchmark seed; stream contents and
     behaviour perturbations depend on the input index too. *)
  let rng = Rng.create ~seed:(spec.Spec.seed * 7919) in
  let data_rng =
    Rng.create ~seed:((spec.Spec.seed * 7919) + ((input + 1) * 104729))
  in
  let params = expand_sites ~code_rng:rng ~data_rng ~input spec in
  let n_sites = Array.length params in
  if n_sites > 62 then
    invalid_arg
      (Printf.sprintf "Gen.generate %s: %d sites exceed the 62 bit planes"
         spec.Spec.name n_sites);
  let inner_n = spec.Spec.inner_n in
  (* Condition streams are packed: one word per inner iteration, one bit
     plane per site — and long enough to cover every outer repetition
     without replaying noise. *)
  let streams_words = (spec.Spec.reps * inner_n) + 1 in
  let data_words = round_pow2 (spec.Spec.footprint_kb * 1024 / 8) in
  let chk_words = (n_sites * 2) + 16 in
  let data_base = streams_words * 8 in
  let mem_words = streams_words + data_words + chk_words in
  let sites =
    Array.mapi
      (fun k (taken_rate, predictability, period, iid) ->
        { id = k + 1; taken_rate; predictability; period; iid; bit = k })
      params
  in
  let packed = Array.make streams_words 0 in
  Array.iter
    (fun site ->
      let seq =
        Stream.sequence ~period:site.period
          ?noise:(if site.iid then Some 1.0 else None)
          ~rng:data_rng ~taken_rate:site.taken_rate
          ~predictability:site.predictability ~length:streams_words ()
      in
      Array.iteri
        (fun i taken ->
          if taken then packed.(i) <- packed.(i) lor (1 lsl site.bit))
        seq)
    sites;
  let segments = [ { Program.base = 0; contents = packed } ] in
  (* Hot sites (the unbiased population plus unpredictable hammocks) are
     split round-robin across the hot workers; highly biased sites go to a
     cold worker with a shorter trip count, so converted branches dominate
     dynamic execution the way the paper's PDIH column implies. *)
  let is_cold site =
    site.iid && Float.max site.taken_rate (1.0 -. site.taken_rate) >= 0.7
  in
  let hot_sites = Array.of_list (List.filter (fun s -> not (is_cold s))
                                   (Array.to_list sites)) in
  let cold_sites = Array.of_list (List.filter is_cold (Array.to_list sites)) in
  let n_hot_procs = max 1 (min spec.Spec.procs (max 1 (Array.length hot_sites)))
  in
  let hot_proc_sites =
    Array.init n_hot_procs (fun p ->
        Array.of_list
          (List.filteri
             (fun k _ -> k mod n_hot_procs = p)
             (Array.to_list hot_sites)))
  in
  let data_mask_bytes = (data_words * 8) - 8 in
  let chk_base_off = data_words * 8 in
  let cold_trip = max 16 (inner_n / max 1 spec.Spec.cold_factor) in
  let hot_workers =
    Array.to_list
      (Array.mapi
         (fun p ss ->
           worker_proc ~rng ~spec
             ~name:(Printf.sprintf "%s.w%d" spec.Spec.name p)
             ~latch_id:(900_000 + p) ~trip:inner_n ~gi:(gi_reg p) ~sites:ss
             ~data_mask_bytes ~data_words ~chk_base_off)
         hot_proc_sites)
  in
  let cold_workers =
    if Array.length cold_sites = 0 then []
    else
      [ worker_proc ~rng ~spec
          ~name:(Printf.sprintf "%s.cold" spec.Spec.name)
          ~latch_id:910_000 ~trip:cold_trip ~gi:(gi_reg 7) ~sites:cold_sites
          ~data_mask_bytes ~data_words ~chk_base_off
      ]
  in
  let workers = hot_workers @ cold_workers in
  let n_procs = List.length workers in
  (* main: setup, then an outer loop calling each worker. *)
  let setup =
    Block.make ~label:"main"
      ~body:
        (Array.to_list
           (Array.map
              (fun r -> Instr.Mov { dst = r; src = Instr.Imm 0 })
              acc_pool)
        @ Array.to_list
            (Array.map
               (fun r -> Instr.Mov { dst = r; src = Instr.Imm 1 })
               facc_pool)
        @ [ Instr.Mov { dst = r_seq; src = Instr.Imm 0 };
          Instr.Mov { dst = r_rnd; src = Instr.Imm (spec.Spec.seed + 12345) };
            Instr.Mov { dst = r_crnd; src = Instr.Imm (spec.Spec.seed + 777) };
            Instr.Mov { dst = r_data; src = Instr.Imm data_base };
            Instr.Mov { dst = r_n; src = Instr.Imm inner_n };
            Instr.Mov { dst = r_reps; src = Instr.Imm spec.Spec.reps };
            Instr.Mov { dst = r_outer; src = Instr.Imm 0 }
          ]
        @ List.init 8 (fun p ->
              Instr.Mov { dst = gi_reg p; src = Instr.Imm 0 }))
      ~term:(Term.Jump "main.outer")
  in
  let call_blocks =
    List.mapi
      (fun p w ->
        let label =
          if p = 0 then "main.outer" else Printf.sprintf "main.c%d" p
        in
        let return_to =
          if p = n_procs - 1 then "main.latch"
          else Printf.sprintf "main.c%d" (p + 1)
        in
        Block.make ~label ~body:[]
          ~term:(Term.Call { target = w.Proc.name; return_to }))
      workers
  in
  let latch =
    Block.make ~label:"main.latch"
      ~body:
        [ Instr.Alu { op = Instr.Add; dst = r_outer; src1 = r_outer;
                      src2 = Instr.Imm 1 };
          Instr.Cmp { op = Instr.Lt; dst = r_cc; src1 = r_outer;
                      src2 = Instr.Reg r_reps }
        ]
      ~term:
        (Term.Branch
           { on = true; src = r_cc; taken = "main.outer";
             not_taken = "main.exit"; id = 999_999 })
  in
  let exit_block =
    (* Fold the accumulator pools together and store the checksums. *)
    let fold_pool op pool =
      List.init
        (Array.length pool - 1)
        (fun k ->
          Instr.Alu { op; dst = pool.(0); src1 = pool.(0);
                      src2 = Instr.Reg pool.(k + 1) })
    in
    Block.make ~label:"main.exit"
      ~body:
        (fold_pool Instr.Add acc_pool
        @ fold_pool Instr.Xor facc_pool
        @ [ Instr.Store { src = r_acc; base = r_data;
                          offset = chk_base_off + (n_sites * 2 * 8) };
            Instr.Store { src = r_facc; base = r_data;
                          offset = chk_base_off + (((n_sites * 2) + 1) * 8) }
          ])
      ~term:Term.Halt
  in
  let main =
    Proc.make ~name:"main.proc" ~entry:"main"
      ((setup :: call_blocks) @ [ latch; exit_block ])
  in
  Program.make ~segments ~mem_words ~main:"main.proc" (main :: workers)
