(* Per-benchmark calibration. The class populations follow the paper's
   taxonomy (Figure 1): "eligible" sites are predictable-but-unbiased
   (predictability well above bias — the transformation's target),
   "biased" sites are highly biased with predictability ≈ bias (superblock
   territory; they fail the 5% selection margin), and "hard" sites are
   unbiased and unpredictable (predication territory; they supply MPPKI).
   Long-period eligible sites ([~period:24]) are what the §5.3 predictor
   ladder separates on. *)

let eligible ?(period = 8) count rate pred =
  Spec.cls ~period ~count ~taken_rate:rate ~predictability:pred ()

(* Highly biased sites are i.i.d.: their rare direction is data-dependent
   noise, so predictability collapses to bias and the 5% selection margin
   excludes them (superblock territory, not ours). *)
let biased count rate =
  let bias = Float.max rate (1.0 -. rate) in
  Spec.cls ~iid:true ~count ~taken_rate:rate ~predictability:bias ()

(* Unbiased and unpredictable: predication territory. *)
let hard count =
  Spec.cls ~iid:true ~count ~taken_rate:0.5 ~predictability:0.5 ()

let ref_inputs = 2

let b = Spec.make

let int_2006 =
  [ b ~name:"h264ref" ~suite:Spec.Int_2006 ~seed:101
      ~branch_classes:[ eligible 10 0.62 0.95; biased 8 0.93; hard 2 ]
      ~loads_per_block:4.0 ~hoist_frac:0.77 ~footprint_kb:16 ~chase_frac:0.02
      ~cond_depth:6 ~cold_factor:8 ();
    b ~name:"perlbench" ~suite:Spec.Int_2006 ~seed:102
      ~branch_classes:[ eligible 9 0.60 0.975; biased 10 0.95 ]
      ~loads_per_block:2.5 ~hoist_frac:0.50 ~footprint_kb:16 ~chase_frac:0.02
      ~cond_depth:7 ~cold_factor:7 ();
    b ~name:"astar" ~suite:Spec.Int_2006 ~seed:103
      ~branch_classes:[ eligible 8 0.58 0.96; biased 8 0.90; hard 4 ]
      ~loads_per_block:4.0 ~hoist_frac:0.75 ~footprint_kb:64 ~chase_frac:0.06
      ~cond_depth:6 ~cold_factor:8 ();
    b ~name:"omnetpp" ~suite:Spec.Int_2006 ~seed:104
      ~branch_classes:[ eligible 5 0.60 0.93; biased 15 0.94; hard 1 ]
      ~loads_per_block:2.5 ~hoist_frac:0.80 ~footprint_kb:256
      ~chase_frac:0.15 ~cond_chase:true ~cond_depth:2 ~cold_factor:5 ();
    b ~name:"xalancbmk" ~suite:Spec.Int_2006 ~seed:105
      ~branch_classes:[ eligible 5 0.62 0.94; biased 14 0.94; hard 1 ]
      ~loads_per_block:2.5 ~hoist_frac:0.85 ~footprint_kb:128
      ~chase_frac:0.12 ~cond_depth:8 ~cold_factor:7 ();
    b ~name:"sjeng" ~suite:Spec.Int_2006 ~seed:106
      ~branch_classes:[ eligible 6 0.58 0.96; biased 14 0.93; hard 3 ]
      ~loads_per_block:3.0 ~hoist_frac:0.60 ~footprint_kb:32 ~chase_frac:0.05
      ~cond_depth:8 ~cold_factor:5 ();
    b ~name:"gobmk" ~suite:Spec.Int_2006 ~seed:107
      ~branch_classes:[ eligible 4 0.56 0.95; biased 18 0.92; hard 5 ]
      ~loads_per_block:3.4 ~hoist_frac:0.84 ~footprint_kb:32 ~chase_frac:0.05
      ~cond_depth:7 ~cold_factor:8 ();
    b ~name:"gcc" ~suite:Spec.Int_2006 ~seed:108
      ~branch_classes:[ eligible 6 0.60 0.93; biased 17 0.94; hard 2 ]
      ~loads_per_block:2.3 ~hoist_frac:0.75 ~footprint_kb:64 ~chase_frac:0.08
      ~cond_depth:8 ~cold_factor:6 ();
    b ~name:"mcf" ~suite:Spec.Int_2006 ~seed:109
      ~branch_classes:[ eligible 8 0.58 0.96; biased 12 0.92; hard 5 ]
      ~loads_per_block:5.0 ~hoist_frac:0.74 ~footprint_kb:4096
      ~chase_frac:0.35 ~cond_chase:true ~cond_depth:2 ~cold_factor:4 ();
    b ~name:"bzip2" ~suite:Spec.Int_2006 ~seed:110
      ~branch_classes:[ eligible 3 0.60 0.93; biased 17 0.93; hard 2 ]
      ~loads_per_block:3.4 ~hoist_frac:0.61 ~footprint_kb:64 ~chase_frac:0.05
      ~cond_depth:8 ~cold_factor:4 ();
    b ~name:"hmmer" ~suite:Spec.Int_2006 ~seed:111
      ~branch_classes:[ eligible 2 0.60 0.98; biased 17 0.97 ]
      ~loads_per_block:5.0 ~hoist_frac:0.98 ~footprint_kb:16 ~chase_frac:0.01
      ~a_alu:6 ~cond_depth:9 ~cold_factor:3 ();
    b ~name:"libquantum" ~suite:Spec.Int_2006 ~seed:112
      ~branch_classes:[ eligible 1 0.60 0.97; biased 16 0.97 ]
      ~loads_per_block:1.0 ~extra_alu:4 ~hoist_frac:0.78 ~footprint_kb:64
      ~chase_frac:0.05 ~cond_chase:true ~cond_depth:2 ~cold_factor:2 ()
  ]

let fp_2006 =
  [ b ~name:"wrf" ~suite:Spec.Fp_2006 ~seed:201
      ~branch_classes:[ eligible 7 0.60 0.985; biased 20 0.97 ]
      ~loads_per_block:5.0 ~hoist_frac:0.85 ~fp_mix:0.5 ~footprint_kb:32
      ~chase_frac:0.02 ~a_alu:2 ~cond_depth:10 ~cold_factor:12 ();
    b ~name:"povray" ~suite:Spec.Fp_2006 ~seed:202
      ~branch_classes:[ eligible 7 0.62 0.975; biased 18 0.96 ]
      ~loads_per_block:3.0 ~hoist_frac:0.85 ~fp_mix:0.5 ~footprint_kb:16
      ~a_alu:2 ~cond_depth:6 ~cold_factor:9 ();
    b ~name:"tonto" ~suite:Spec.Fp_2006 ~seed:203
      ~branch_classes:[ eligible 7 0.60 0.96; biased 16 0.96; hard 2 ]
      ~loads_per_block:3.1 ~hoist_frac:0.80 ~fp_mix:0.5 ~footprint_kb:32 ~cond_depth:5 ~cold_factor:4 ();
    b ~name:"gamess" ~suite:Spec.Fp_2006 ~seed:204
      ~branch_classes:[ eligible 7 0.60 0.96; biased 12 0.95; hard 1 ]
      ~loads_per_block:3.5 ~hoist_frac:0.54 ~fp_mix:0.5 ~footprint_kb:32 ~cond_depth:7 ~cold_factor:2 ();
    b ~name:"calculix" ~suite:Spec.Fp_2006 ~seed:205
      ~branch_classes:[ eligible 5 0.60 0.94; biased 18 0.94; hard 2 ]
      ~loads_per_block:2.1 ~hoist_frac:0.45 ~fp_mix:0.5 ~footprint_kb:32 ~cond_depth:7 ~cold_factor:5 ();
    b ~name:"milc" ~suite:Spec.Fp_2006 ~seed:206
      ~branch_classes:[ eligible 6 0.60 0.985; biased 18 0.97 ]
      ~loads_per_block:5.0 ~hoist_frac:0.77 ~fp_mix:0.5 ~footprint_kb:128
      ~chase_frac:0.05 ~a_alu:4 ~cond_depth:9 ~cold_factor:4 ();
    b ~name:"soplex" ~suite:Spec.Fp_2006 ~seed:207
      ~branch_classes:[ eligible 3 0.60 0.96; biased 18 0.95; hard 1 ]
      ~loads_per_block:1.0 ~hoist_frac:0.49 ~fp_mix:0.5 ~footprint_kb:256
      ~chase_frac:0.08 ~cond_depth:11 ~cold_factor:4 ();
    b ~name:"namd" ~suite:Spec.Fp_2006 ~seed:208
      ~branch_classes:[ eligible 6 0.60 0.98; biased 18 0.97 ]
      ~loads_per_block:2.4 ~hoist_frac:0.94 ~fp_mix:0.5 ~footprint_kb:32
      ~a_alu:4 ~cond_depth:7 ~cold_factor:3 ();
    b ~name:"lbm" ~suite:Spec.Fp_2006 ~seed:209
      ~branch_classes:[ eligible 5 0.60 0.985; biased 16 0.97 ]
      ~loads_per_block:5.0 ~extra_alu:8 ~hoist_frac:0.66 ~fp_mix:0.5
      ~footprint_kb:512 ~chase_frac:0.05 ~a_alu:10 ~cond_chase:true ~cond_depth:4 ~cold_factor:2 ();
    b ~name:"gromacs" ~suite:Spec.Fp_2006 ~seed:210
      ~branch_classes:[ eligible 5 0.60 0.97; biased 18 0.96 ]
      ~loads_per_block:4.0 ~hoist_frac:0.88 ~fp_mix:0.5 ~footprint_kb:32
      ~a_alu:5 ~cond_depth:11 ~cold_factor:3 ();
    b ~name:"sphinx3" ~suite:Spec.Fp_2006 ~seed:211
      ~branch_classes:[ eligible 4 0.60 0.96; biased 20 0.96; hard 1 ]
      ~loads_per_block:2.6 ~hoist_frac:0.87 ~fp_mix:0.5 ~footprint_kb:128
      ~chase_frac:0.06 ~a_alu:1 ~cond_depth:11 ~cold_factor:4 ();
    b ~name:"bwaves" ~suite:Spec.Fp_2006 ~seed:212
      ~branch_classes:[ eligible 6 0.60 0.97; biased 15 0.96 ]
      ~loads_per_block:5.0 ~hoist_frac:0.30 ~fp_mix:0.5 ~footprint_kb:256
      ~a_alu:6 ~cond_depth:7 ~cold_factor:3 ();
    b ~name:"GemsFDTD" ~suite:Spec.Fp_2006 ~seed:213
      ~branch_classes:[ eligible 2 0.60 0.97; biased 19 0.96 ]
      ~loads_per_block:3.2 ~hoist_frac:0.68 ~fp_mix:0.5 ~footprint_kb:256
      ~a_alu:6 ~cond_depth:10 ~cold_factor:3 ();
    b ~name:"zeusmp" ~suite:Spec.Fp_2006 ~seed:214
      ~branch_classes:[ eligible 5 0.60 0.98; biased 18 0.97 ]
      ~loads_per_block:5.0 ~hoist_frac:0.85 ~fp_mix:0.5 ~footprint_kb:256
      ~a_alu:8 ~cond_depth:11 ~cold_factor:2 ();
    b ~name:"dealII" ~suite:Spec.Fp_2006 ~seed:215
      ~branch_classes:[ eligible 3 0.58 0.955; biased 24 0.96; hard 1 ]
      ~loads_per_block:2.5 ~hoist_frac:0.35 ~fp_mix:0.5 ~footprint_kb:64 ~cond_depth:7 ~cold_factor:2 ();
    b ~name:"cactusADM" ~suite:Spec.Fp_2006 ~seed:216
      ~branch_classes:[ eligible 3 0.60 0.98; biased 24 0.97 ]
      ~loads_per_block:6.0 ~extra_alu:8 ~hoist_frac:0.97 ~fp_mix:0.5
      ~footprint_kb:256 ~a_alu:14 ~a_loads:3.0 ~cond_depth:7 ~cold_factor:2 ();
    b ~name:"leslie3d" ~suite:Spec.Fp_2006 ~seed:217
      ~branch_classes:[ eligible 2 0.60 0.98; biased 19 0.97 ]
      ~loads_per_block:6.0 ~extra_alu:8 ~hoist_frac:0.94 ~fp_mix:0.5
      ~footprint_kb:256 ~a_alu:14 ~a_loads:3.0 ~cond_depth:13 ~cold_factor:2 ()
  ]

let int_2000 =
  [ b ~name:"gzip" ~suite:Spec.Int_2000 ~seed:301
      ~branch_classes:[ eligible 6 0.60 0.96; biased 14 0.94; hard 1 ]
      ~loads_per_block:3.0 ~hoist_frac:0.70 ~footprint_kb:128
      ~chase_frac:0.10 ~cond_depth:6 ~cold_factor:6 ();
    b ~name:"vpr" ~suite:Spec.Int_2000 ~seed:302
      ~branch_classes:[ eligible 3 0.58 0.93; biased 20 0.93; hard 2 ]
      ~loads_per_block:2.5 ~hoist_frac:0.65 ~footprint_kb:64 ~chase_frac:0.08
      ~cond_depth:6 ~cold_factor:3 ();
    b ~name:"gcc.2k" ~suite:Spec.Int_2000 ~seed:303
      ~branch_classes:[ eligible 7 0.60 0.96; biased 14 0.95; hard 1 ]
      ~loads_per_block:2.3 ~hoist_frac:0.70 ~footprint_kb:32 ~chase_frac:0.04
      ~cond_depth:6 ~cold_factor:6 ();
    b ~name:"mcf.2k" ~suite:Spec.Int_2000 ~seed:304
      ~branch_classes:[ eligible 8 0.58 0.97; biased 10 0.93; hard 3 ]
      ~loads_per_block:5.0 ~hoist_frac:0.74 ~footprint_kb:2048
      ~chase_frac:0.30 ~cond_chase:true ~cond_depth:2 ~cold_factor:6 ();
    b ~name:"crafty" ~suite:Spec.Int_2000 ~seed:305
      ~branch_classes:[ eligible 8 0.60 0.96; biased 12 0.94; hard 2 ]
      ~loads_per_block:3.0 ~hoist_frac:0.75 ~footprint_kb:16 ~chase_frac:0.02
      ~cond_depth:6 ~cold_factor:7 ();
    b ~name:"parser" ~suite:Spec.Int_2000 ~seed:306
      ~branch_classes:[ eligible 7 0.60 0.955; biased 14 0.94; hard 2 ]
      ~loads_per_block:2.5 ~hoist_frac:0.70 ~footprint_kb:32 ~cond_depth:6 ~cold_factor:6 ();
    b ~name:"eon" ~suite:Spec.Int_2000 ~seed:307
      ~branch_classes:[ eligible 8 0.62 0.97; biased 12 0.95 ]
      ~loads_per_block:3.0 ~hoist_frac:0.80 ~fp_mix:0.2 ~footprint_kb:16 ~cond_depth:6 ~cold_factor:7 ();
    b ~name:"perlbmk" ~suite:Spec.Int_2000 ~seed:308
      ~branch_classes:[ eligible 6 0.60 0.97; biased 14 0.95 ]
      ~loads_per_block:2.5 ~hoist_frac:0.55 ~footprint_kb:16 ~cond_depth:7 ~cold_factor:6 ();
    b ~name:"gap" ~suite:Spec.Int_2000 ~seed:309
      ~branch_classes:[ eligible 8 0.60 0.96; biased 12 0.94; hard 1 ]
      ~loads_per_block:3.0 ~hoist_frac:0.75 ~footprint_kb:64 ~chase_frac:0.05
      ~cond_depth:6 ~cold_factor:6 ();
    b ~name:"vortex" ~suite:Spec.Int_2000 ~seed:310
      ~branch_classes:[ eligible 10 0.60 0.97; biased 10 0.95 ]
      ~loads_per_block:3.5 ~hoist_frac:0.80 ~footprint_kb:32 ~chase_frac:0.03
      ~cond_depth:7 ~cold_factor:8 ();
    b ~name:"bzip2.2k" ~suite:Spec.Int_2000 ~seed:311
      ~branch_classes:[ eligible 4 0.60 0.95; biased 16 0.94; hard 1 ]
      ~loads_per_block:3.0 ~hoist_frac:0.60 ~footprint_kb:64 ~cond_depth:7 ~cold_factor:4 ();
    b ~name:"twolf" ~suite:Spec.Int_2000 ~seed:312
      ~branch_classes:[ eligible 3 0.56 0.92; biased 20 0.92; hard 3 ]
      ~loads_per_block:2.5 ~hoist_frac:0.60 ~footprint_kb:128
      ~chase_frac:0.12 ~cond_depth:6 ~cold_factor:3 ()
  ]

let fp_2000 =
  [ b ~name:"art" ~suite:Spec.Fp_2000 ~seed:401
      ~branch_classes:[ eligible 5 0.60 0.985; biased 18 0.97 ]
      ~loads_per_block:3.0 ~hoist_frac:0.80 ~fp_mix:0.5 ~footprint_kb:256
      ~chase_frac:0.10 ~a_alu:4 ~cond_depth:8 ~cold_factor:8 ();
    b ~name:"ammp" ~suite:Spec.Fp_2000 ~seed:402
      ~branch_classes:[ eligible 5 0.60 0.98; biased 18 0.97 ]
      ~loads_per_block:3.0 ~hoist_frac:0.80 ~fp_mix:0.5 ~footprint_kb:128
      ~chase_frac:0.08 ~a_alu:4 ~cond_depth:8 ~cold_factor:7 ();
    b ~name:"mesa" ~suite:Spec.Fp_2000 ~seed:403
      ~branch_classes:[ eligible 5 0.62 0.98; biased 19 0.97 ]
      ~loads_per_block:2.5 ~hoist_frac:0.80 ~fp_mix:0.5 ~footprint_kb:32
      ~a_alu:3 ~cond_depth:7 ~cold_factor:7 ();
    b ~name:"wupwise" ~suite:Spec.Fp_2000 ~seed:404
      ~branch_classes:[ eligible 4 0.60 0.975; biased 20 0.96 ]
      ~loads_per_block:3.0 ~hoist_frac:0.75 ~fp_mix:0.5 ~footprint_kb:64
      ~a_alu:6 ~cond_depth:8 ~cold_factor:5 ();
    b ~name:"facerec" ~suite:Spec.Fp_2000 ~seed:405
      ~branch_classes:[ eligible 4 0.60 0.975; biased 20 0.96 ]
      ~loads_per_block:3.0 ~hoist_frac:0.70 ~fp_mix:0.5 ~footprint_kb:128
      ~a_alu:6 ~cond_depth:8 ~cold_factor:5 ();
    b ~name:"swim" ~suite:Spec.Fp_2000 ~seed:406
      ~branch_classes:[ eligible 2 0.60 0.98; biased 20 0.97 ]
      ~loads_per_block:4.0 ~hoist_frac:0.85 ~fp_mix:0.5 ~footprint_kb:512
      ~a_alu:12 ~cond_depth:9 ~cold_factor:3 ();
    b ~name:"mgrid" ~suite:Spec.Fp_2000 ~seed:407
      ~branch_classes:[ eligible 2 0.60 0.98; biased 20 0.97 ]
      ~loads_per_block:4.0 ~hoist_frac:0.85 ~fp_mix:0.5 ~footprint_kb:256
      ~a_alu:12 ~cond_depth:9 ~cold_factor:3 ();
    b ~name:"applu" ~suite:Spec.Fp_2000 ~seed:408
      ~branch_classes:[ eligible 2 0.60 0.98; biased 20 0.97 ]
      ~loads_per_block:4.0 ~hoist_frac:0.80 ~fp_mix:0.5 ~footprint_kb:256
      ~a_alu:10 ~cond_depth:8 ~cold_factor:3 ();
    b ~name:"galgel" ~suite:Spec.Fp_2000 ~seed:409
      ~branch_classes:[ eligible 3 0.60 0.975; biased 20 0.96 ]
      ~loads_per_block:3.0 ~hoist_frac:0.80 ~fp_mix:0.5 ~footprint_kb:128
      ~a_alu:8 ~cond_depth:8 ~cold_factor:3 ();
    b ~name:"equake" ~suite:Spec.Fp_2000 ~seed:410
      ~branch_classes:[ eligible 3 0.60 0.97; biased 18 0.96 ]
      ~loads_per_block:3.0 ~hoist_frac:0.75 ~fp_mix:0.5 ~footprint_kb:256
      ~chase_frac:0.08 ~a_alu:4 ~cond_depth:8 ~cold_factor:3 ();
    b ~name:"lucas" ~suite:Spec.Fp_2000 ~seed:411
      ~branch_classes:[ eligible 2 0.60 0.98; biased 20 0.97 ]
      ~loads_per_block:3.0 ~hoist_frac:0.80 ~fp_mix:0.5 ~footprint_kb:128
      ~a_alu:10 ~cond_depth:9 ~cold_factor:2 ();
    b ~name:"fma3d" ~suite:Spec.Fp_2000 ~seed:412
      ~branch_classes:[ eligible 2 0.60 0.975; biased 22 0.96 ]
      ~loads_per_block:3.0 ~hoist_frac:0.75 ~fp_mix:0.5 ~footprint_kb:128
      ~a_alu:8 ~cond_depth:8 ~cold_factor:2 ();
    b ~name:"sixtrack" ~suite:Spec.Fp_2000 ~seed:413
      ~branch_classes:[ eligible 2 0.60 0.975; biased 22 0.96 ]
      ~loads_per_block:3.0 ~hoist_frac:0.80 ~fp_mix:0.5 ~footprint_kb:64
      ~a_alu:10 ~cond_depth:8 ~cold_factor:2 ();
    b ~name:"apsi" ~suite:Spec.Fp_2000 ~seed:414
      ~branch_classes:[ eligible 2 0.60 0.975; biased 20 0.96 ]
      ~loads_per_block:3.0 ~hoist_frac:0.75 ~fp_mix:0.5 ~footprint_kb:128
      ~a_alu:8 ~cond_depth:8 ~cold_factor:2 ()
  ]

let all = int_2006 @ fp_2006 @ int_2000 @ fp_2000

let of_suite = function
  | Spec.Int_2006 -> int_2006
  | Spec.Fp_2006 -> fp_2006
  | Spec.Int_2000 -> int_2000
  | Spec.Fp_2000 -> fp_2000

let find name = List.find_opt (fun s -> String.equal s.Spec.name name) all
