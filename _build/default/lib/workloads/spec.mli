(** Benchmark specifications.

    Each SPEC benchmark is modelled as a synthetic kernel whose measurable
    characteristics (per-branch bias and predictability, loads per block,
    hoistable fraction, FP mix, data footprint and irregular-access share)
    are calibrated to the paper's Table 2 metrics for that benchmark. See
    DESIGN.md §2 for why this substitution preserves the experiments. *)

type suite = Int_2006 | Fp_2006 | Int_2000 | Fp_2000

val suite_name : suite -> string

type branch_class =
  { count : int;  (** static sites of this class *)
    taken_rate : float;
    predictability : float;
    period : int;
        (** base-pattern period of the condition stream. Short periods (8)
            are learnable by every history predictor; long periods (16+)
            need longer/better-allocated history, which is what separates
            the predictor ladder in the §5.3 sensitivity study. *)
    iid : bool
        (** i.i.d. Bernoulli outcomes instead of pattern+noise: best
            achievable accuracy equals the bias. Models highly biased
            branches (whose rare direction is data-dependent noise) and
            truly unpredictable hammocks. *)
  }

val cls :
  ?period:int -> ?iid:bool -> count:int -> taken_rate:float ->
  predictability:float -> unit -> branch_class
(** [period] defaults to 8, [iid] to false. *)

type t =
  { name : string;
    suite : suite;
    seed : int;
    branch_classes : branch_class list;
        (** the population of forward hammock branches *)
    loads_per_block : float;  (** ALPBB knob *)
    extra_alu : int;  (** non-load work per successor block *)
    hoist_frac : float;
        (** fraction of a successor block before its first store (PHI) *)
    fp_mix : float;  (** fraction of block ALU work sent to FP units *)
    footprint_kb : int;  (** data array size; > 32 KB ⇒ L1-D misses *)
    chase_frac : float;
        (** fraction of data loads using a pseudo-random index *)
    cond_depth : int;
        (** extra dependent ALU ops between the condition load and the
            compare — lengthens the resolution slice (raises ASPCB) *)
    cond_chase : bool;
        (** route a pointer-chase load into the condition's dependence
            chain (value-neutral): branch resolution now waits on a
            potentially missing load, the paper's high-ASPCB shape
            (mcf, omnetpp, libquantum) *)
    a_loads : float;
    a_alu : int;
        (** independent work inside the branch's own block. Large values
            model the big basic blocks of FP codes, where the baseline
            scheduler can already hide branch resolution — shrinking the
            transformation's advantage *)
    procs : int;  (** callee procedures the hot sites are spread across *)
    inner_n : int;  (** hot inner-loop trip count (also stream length) *)
    cold_factor : int;
        (** highly biased sites live in a colder worker whose loop runs
            [inner_n / cold_factor] trips: converted (hot) branches dominate
            dynamically, as the paper's PDIH ≫ PBC rows show *)
    reps : int  (** outer repetitions (caches warm after the first) *)
  }

val total_sites : t -> int

val make :
  name:string ->
  suite:suite ->
  seed:int ->
  branch_classes:branch_class list ->
  ?loads_per_block:float ->
  ?extra_alu:int ->
  ?hoist_frac:float ->
  ?fp_mix:float ->
  ?footprint_kb:int ->
  ?chase_frac:float ->
  ?cond_depth:int ->
  ?cond_chase:bool ->
  ?a_loads:float ->
  ?a_alu:int ->
  ?procs:int ->
  ?inner_n:int ->
  ?cold_factor:int ->
  ?reps:int ->
  unit ->
  t
(** Defaults: 2.5 loads/block, 2 extra ALU, hoist 0.75, no FP, 16 KB
    footprint, 0.05 chase, cond_depth 1, no cond_chase, no A-block work,
    2 procs, inner 256, cold_factor 3, reps 12. *)
