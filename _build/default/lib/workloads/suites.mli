(** The benchmark suites: synthetic stand-ins for SPEC 2006 INT (12),
    SPEC 2006 FP (17), SPEC 2000 INT (12) and SPEC 2000 FP (14), each
    calibrated to the corresponding row of the paper's Table 2 (PBC via the
    eligible-site share, ALPBB via loads-per-block, PHI via store placement,
    MPPKI via stream noise and hard-branch count, D$ behaviour via footprint
    and pointer-chase share, ASPCB via condition depth/chase). See DESIGN.md
    for the substitution argument. *)

val int_2006 : Spec.t list
val fp_2006 : Spec.t list
val int_2000 : Spec.t list
val fp_2000 : Spec.t list

val all : Spec.t list
val of_suite : Spec.suite -> Spec.t list
val find : string -> Spec.t option

val ref_inputs : int
(** Number of REF inputs simulated per benchmark (input indices
    [1 .. ref_inputs]; input 0 is the TRAIN input used for profiling). *)
