type suite = Int_2006 | Fp_2006 | Int_2000 | Fp_2000

let suite_name = function
  | Int_2006 -> "SPEC 2006 Int"
  | Fp_2006 -> "SPEC 2006 FP"
  | Int_2000 -> "SPEC 2000 Int"
  | Fp_2000 -> "SPEC 2000 FP"

type branch_class =
  { count : int;
    taken_rate : float;
    predictability : float;
    period : int;
    iid : bool
  }

let cls ?(period = 8) ?(iid = false) ~count ~taken_rate ~predictability () =
  { count; taken_rate; predictability; period; iid }

type t =
  { name : string;
    suite : suite;
    seed : int;
    branch_classes : branch_class list;
    loads_per_block : float;
    extra_alu : int;
    hoist_frac : float;
    fp_mix : float;
    footprint_kb : int;
    chase_frac : float;
    cond_depth : int;
    cond_chase : bool;
    a_loads : float;
    a_alu : int;
    procs : int;
    inner_n : int;
    cold_factor : int;
    reps : int
  }

let total_sites t =
  List.fold_left (fun n c -> n + c.count) 0 t.branch_classes

let make ~name ~suite ~seed ~branch_classes ?(loads_per_block = 2.5)
    ?(extra_alu = 2) ?(hoist_frac = 0.75) ?(fp_mix = 0.0) ?(footprint_kb = 16)
    ?(chase_frac = 0.05) ?(cond_depth = 1) ?(cond_chase = false)
    ?(a_loads = 0.0) ?(a_alu = 0) ?(procs = 2) ?(inner_n = 256)
    ?(cold_factor = 3) ?(reps = 12) () =
  { name;
    suite;
    seed;
    branch_classes;
    loads_per_block;
    extra_alu;
    hoist_frac;
    fp_mix;
    footprint_kb;
    chase_frac;
    cond_depth;
    cond_chase;
    a_loads;
    a_alu;
    procs;
    inner_n;
    cold_factor;
    reps
  }
