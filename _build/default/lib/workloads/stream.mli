(** Synthesis of branch-condition sequences with controlled bias and
    predictability.

    A sequence is built from a short repeating base pattern (learnable by
    any history-based predictor, hence ~100% predictable when noise-free)
    whose duty cycle sets the {e bias}, plus i.i.d. noise that replaces a
    pattern element with a fresh Bernoulli(taken-rate) draw — lowering
    {e predictability} while preserving bias in expectation. This is the
    knob pair behind the paper's Figures 2 and 3: bias and predictability
    can be dialled independently (within [predictability >= bias]). *)

val sequence :
  ?period:int ->
  ?noise:float ->
  rng:Rng.t ->
  taken_rate:float ->
  predictability:float ->
  length:int ->
  unit ->
  bool array
(** [sequence ~rng ~taken_rate ~predictability ~length ()] returns a boolean
    outcome sequence whose empirical taken-rate approaches [taken_rate] and
    whose achievable prediction accuracy (for a pattern-learning predictor)
    approaches [predictability]. [period] (default 8) sets the base-pattern
    period: longer periods demand longer effective history from the
    predictor. [noise] overrides the computed replacement probability;
    [~noise:1.0] yields a pure i.i.d. Bernoulli sequence, whose best
    achievable accuracy is its bias — how real highly-biased (or truly
    unpredictable) branches behave. Raises [Invalid_argument] on rates
    outside [0, 1], non-positive length or period. *)

val noise_for : taken_rate:float -> predictability:float -> float
(** The noise probability used by {!sequence}: solves
    [1 - q * p_disagree = predictability] where [p_disagree] is the chance a
    random replacement disagrees with the pattern element it displaces. *)

val to_words : bool array -> int array
(** 1/0 words for a data segment. *)
