lib/workloads/gen.ml: Array Block Bv_ir Bv_isa Float Instr List Printf Proc Program Reg Rng Spec Stream Term
