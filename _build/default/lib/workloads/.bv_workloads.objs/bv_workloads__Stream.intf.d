lib/workloads/stream.mli: Rng
