lib/workloads/gen.mli: Bv_ir Bv_isa Program Spec
