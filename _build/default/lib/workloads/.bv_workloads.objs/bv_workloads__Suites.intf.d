lib/workloads/suites.mli: Spec
