lib/workloads/rng.ml: Array Float
