lib/workloads/stream.ml: Array Bool Float Rng
