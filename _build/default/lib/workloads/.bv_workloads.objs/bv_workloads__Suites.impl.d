lib/workloads/suites.ml: Float List Spec String
