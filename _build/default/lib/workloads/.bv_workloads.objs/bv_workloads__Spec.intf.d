lib/workloads/spec.mli:
