lib/workloads/rng.mli:
