(** Deterministic splitmix64-style pseudo-random generator. All workload
    generation is seeded, so every experiment is exactly reproducible. *)

type t

val create : seed:int -> t
val next : t -> int
(** Uniform non-negative 62-bit value. *)

val float : t -> float
(** Uniform in [0, 1). *)

val below : t -> int -> int
(** Uniform in [0, n). *)

val bernoulli : t -> float -> bool
val shuffle : t -> 'a array -> unit
