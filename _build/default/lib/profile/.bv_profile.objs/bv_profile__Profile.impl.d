lib/profile/profile.ml: Bv_bpred Bv_exec Float Format Hashtbl Int Interp List Predictor
