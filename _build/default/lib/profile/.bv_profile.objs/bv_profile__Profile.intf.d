lib/profile/profile.mli: Bv_bpred Bv_ir Format Hashtbl Layout Predictor
