examples/taxonomy.ml: Block Bv_ir Bv_isa Bv_pipeline Bv_sched Bv_workloads Float Instr Layout List Printf Proc Program Reg Term Vanguard
