examples/predictor_tour.ml: Array Bv_bpred Bv_workloads Float Kind List Predictor Printf Rng Stream
