examples/custom_workload.ml: Bv_harness Bv_workloads Printf Runner Spec Vanguard
