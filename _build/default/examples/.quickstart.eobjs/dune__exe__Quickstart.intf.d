examples/quickstart.mli:
