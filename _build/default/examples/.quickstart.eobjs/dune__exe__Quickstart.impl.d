examples/quickstart.ml: Block Bv_bpred Bv_exec Bv_ir Bv_isa Bv_pipeline Bv_profile Bv_sched Bv_workloads Float Format Instr Layout List Machine Proc Program Reg Stats Term Vanguard
