examples/omnetpp_carray.ml: Block Bv_bpred Bv_exec Bv_ir Bv_isa Bv_pipeline Bv_profile Bv_sched Bv_workloads Float Format Instr Layout Machine Proc Program Reg Stats Term Vanguard
