examples/taxonomy.mli:
