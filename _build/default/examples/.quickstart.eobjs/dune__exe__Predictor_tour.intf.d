examples/predictor_tour.mli:
