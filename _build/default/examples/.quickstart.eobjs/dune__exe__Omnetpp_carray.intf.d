examples/omnetpp_carray.mli:
