(* Quickstart: build a tiny program with one predictable-but-unbiased
   branch, profile it, apply the Decomposed Branch Transformation, and
   compare baseline vs transformed on the 4-wide in-order machine.

   Run with: dune exec examples/quickstart.exe *)

open Bv_isa
open Bv_ir

let r = Reg.make

(* A loop walking a condition stream. The branch is 60/40 biased but highly
   predictable (the stream repeats a short pattern), which is exactly the
   population the paper targets: superblocks won't touch it (too unbiased),
   predication would waste issue slots (too predictable). *)
let program ~n ~stream =
  Program.make ~main:"main" ~mem_words:4200
    ~segments:[ { Program.base = 0; contents = stream } ]
    [ Proc.make ~name:"main"
        [ Block.make ~label:"entry"
            ~body:[ Instr.Mov { dst = r 6; src = Instr.Imm 0 };
                    Instr.Mov { dst = r 20; src = Instr.Imm 0 } ]
            ~term:(Term.Jump "rep");
          (* outer repetitions keep the caches warm after the first pass *)
          Block.make ~label:"rep"
            ~body:[ Instr.Mov { dst = r 1; src = Instr.Imm 0 } ]
            ~term:(Term.Jump "head");
          (* A: load the condition and compare *)
          Block.make ~label:"head"
            ~body:
              [ Instr.Alu { op = Instr.Shl; dst = r 2; src1 = r 1;
                            src2 = Instr.Imm 3 };
                Instr.Load { dst = r 4; base = r 2; offset = 0;
                             speculative = false };
                Instr.Cmp { op = Instr.Ne; dst = r 5; src1 = r 4;
                            src2 = Instr.Imm 0 }
              ]
            ~term:
              (Term.Branch
                 { on = true; src = r 5; taken = "then"; not_taken = "else";
                   id = 1 });
          (* B: two loads the machine could overlap with A's condition *)
          Block.make ~label:"else"
            ~body:
              [ Instr.Load { dst = r 10; base = r 2; offset = 16000;
                             speculative = false };
                Instr.Load { dst = r 11; base = r 2; offset = 16008;
                             speculative = false };
                Instr.Alu { op = Instr.Add; dst = r 6; src1 = r 6;
                            src2 = Instr.Reg (r 10) };
                Instr.Alu { op = Instr.Add; dst = r 6; src1 = r 6;
                            src2 = Instr.Reg (r 11) };
                Instr.Store { src = r 6; base = r 0; offset = 33200 }
              ]
            ~term:(Term.Jump "latch");
          (* C *)
          Block.make ~label:"then"
            ~body:
              [ Instr.Load { dst = r 12; base = r 2; offset = 16016;
                             speculative = false };
                Instr.Alu { op = Instr.Mul; dst = r 12; src1 = r 12;
                            src2 = Instr.Imm 3 };
                Instr.Alu { op = Instr.Add; dst = r 6; src1 = r 6;
                            src2 = Instr.Reg (r 12) };
                Instr.Store { src = r 6; base = r 0; offset = 33208 }
              ]
            ~term:(Term.Jump "latch");
          Block.make ~label:"latch"
            ~body:
              [ Instr.Alu { op = Instr.Add; dst = r 1; src1 = r 1;
                            src2 = Instr.Imm 1 };
                Instr.Cmp { op = Instr.Lt; dst = r 5; src1 = r 1;
                            src2 = Instr.Imm n }
              ]
            ~term:
              (Term.Branch
                 { on = true; src = r 5; taken = "head"; not_taken = "outer";
                   id = 2 });
          Block.make ~label:"outer"
            ~body:
              [ Instr.Alu { op = Instr.Add; dst = r 20; src1 = r 20;
                            src2 = Instr.Imm 1 };
                Instr.Cmp { op = Instr.Lt; dst = r 5; src1 = r 20;
                            src2 = Instr.Imm 6 }
              ]
            ~term:
              (Term.Branch
                 { on = true; src = r 5; taken = "rep"; not_taken = "exit";
                   id = 3 });
          Block.make ~label:"exit" ~body:[] ~term:Term.Halt
        ]
    ]

let () =
  (* 1. generate the condition stream: 60% taken, ~95% predictable *)
  let n = 2000 in
  let rng = Bv_workloads.Rng.create ~seed:42 in
  let stream =
    Bv_workloads.Stream.to_words
      (Bv_workloads.Stream.sequence ~rng ~taken_rate:0.6 ~predictability:0.95
         ~length:n ())
  in
  let prog = program ~n ~stream in
  Bv_sched.Sched.schedule_program prog;

  (* 2. profile with the baseline predictor (the paper's TRAIN/PGO step) *)
  let predictor = Bv_bpred.Kind.create Bv_bpred.Kind.Tournament in
  let image = Layout.program prog in
  let profile = Bv_profile.Profile.collect ~predictor image in
  Format.printf "== profile ==@.%a@.@." Bv_profile.Profile.pp profile;

  (* 3. select candidates: forward branches with predictability - bias >= 5% *)
  let selection = Vanguard.Select.select ~profile prog in
  Format.printf "selected %d of %d forward branches (PBC %.0f%%)@.@."
    (List.length selection.Vanguard.Select.candidates)
    selection.Vanguard.Select.static_forward_branches
    (Vanguard.Select.pbc selection);

  (* 4. apply the Decomposed Branch Transformation *)
  let result =
    Vanguard.Transform.apply
      ~candidates:selection.Vanguard.Select.candidates prog
  in
  let transformed = Layout.program result.Vanguard.Transform.program in
  Format.printf "== transformed code ==@.%a@." Layout.pp_disassembly
    transformed;

  (* 5. the transformation is architecturally invisible *)
  let d0 = Bv_exec.Interp.arch_digest (Bv_exec.Interp.run image) in
  let d1 = Bv_exec.Interp.arch_digest (Bv_exec.Interp.run transformed) in
  assert (d0 = d1);
  Format.printf "functional digests agree: %d@.@." d0;

  (* 6. time both on the 4-wide in-order machine *)
  let config = Bv_pipeline.Config.four_wide in
  let base = Bv_pipeline.Machine.run ~config image in
  let exp = Bv_pipeline.Machine.run ~config transformed in
  let open Bv_pipeline in
  Format.printf "baseline:     %a@.@." Stats.pp base.Machine.stats;
  Format.printf "decomposed:   %a@.@." Stats.pp exp.Machine.stats;
  Format.printf "speedup: %+.2f%%@."
    (100.0
    *. (Float.of_int base.Machine.stats.Stats.cycles
        /. Float.of_int exp.Machine.stats.Stats.cycles
       -. 1.0))
