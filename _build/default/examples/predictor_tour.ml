(* A tour of the branch predictor ladder (paper §5.3).

   Shows how each predictor copes with the three branch populations of the
   paper's Figure 1 taxonomy — highly biased, predictable-but-unbiased, and
   unpredictable — plus the dilution effect: random branches sharing the
   global history destroy gshare-style predictors long before they hurt
   TAGE, which is exactly why astar/sjeng/gobmk/mcf respond to better
   predictors in the paper's sensitivity study.

   Run with: dune exec examples/predictor_tour.exe *)

open Bv_bpred
open Bv_workloads

let accuracy (p : Predictor.t) ~pc outcomes =
  let correct = ref 0 in
  Array.iter
    (fun taken ->
      let pred, meta = p.Predictor.predict ~pc ~outcome:taken in
      if pred = taken then incr correct
      else p.Predictor.recover meta ~taken;
      p.Predictor.update meta ~pc ~taken)
    outcomes;
  Float.of_int !correct /. Float.of_int (Array.length outcomes)

(* Interleave several sites through one predictor, program-order style, and
   report the accuracy on site 0. *)
let interleaved_accuracy kind streams =
  let p = Kind.create kind in
  let n = Array.length streams.(0) in
  let correct = ref 0 in
  for i = 0 to n - 1 do
    Array.iteri
      (fun s stream ->
        let taken = stream.(i) in
        let pc = 0x1000 + (s * 64) in
        let pred, meta = p.Predictor.predict ~pc ~outcome:taken in
        if pred = taken then begin
          if s = 0 then incr correct
        end
        else p.Predictor.recover meta ~taken;
        p.Predictor.update meta ~pc ~taken)
      streams
  done;
  Float.of_int !correct /. Float.of_int n

let ladder = Kind.[ Bimodal; Gshare; Tournament; Tage; Isl_tage; Perfect ]

let () =
  let n = 30000 in
  let rng = Rng.create ~seed:99 in
  let biased =
    Stream.sequence ~noise:1.0 ~rng ~taken_rate:0.95 ~predictability:0.95
      ~length:n ()
  in
  let patterned =
    Stream.sequence ~rng ~taken_rate:0.6 ~predictability:0.97 ~length:n ()
  in
  let random =
    Stream.sequence ~noise:1.0 ~rng ~taken_rate:0.5 ~predictability:0.5
      ~length:n ()
  in
  let loopish = Array.init n (fun i -> i mod 33 <> 32) in
  Printf.printf "%-12s %8s %8s %8s %8s\n" "predictor" "biased" "pattern"
    "random" "loop-32";
  List.iter
    (fun kind ->
      let a s = accuracy (Kind.create kind) ~pc:0x40 s in
      Printf.printf "%-12s %8.3f %8.3f %8.3f %8.3f\n" (Kind.name kind)
        (a biased) (a patterned) (a random) (a loopish))
    ladder;
  Printf.printf
    "\nDilution: accuracy on a patterned site when k random sites share \
     the global history\n";
  Printf.printf "%-12s" "predictor";
  List.iter (fun k -> Printf.printf " %7s" (Printf.sprintf "k=%d" k)) [ 0; 2; 4; 6 ];
  print_newline ();
  List.iter
    (fun kind ->
      Printf.printf "%-12s" (Kind.name kind);
      List.iter
        (fun k ->
          let rng = Rng.create ~seed:(100 + k) in
          let streams =
            Array.init (k + 1) (fun s ->
                if s = 0 then
                  Stream.sequence ~rng ~taken_rate:0.6 ~predictability:0.97
                    ~length:12000 ()
                else
                  Stream.sequence ~noise:1.0 ~rng ~taken_rate:0.5
                    ~predictability:0.5 ~length:12000 ())
          in
          Printf.printf " %7.3f" (interleaved_accuracy kind streams))
        [ 0; 2; 4; 6 ];
      print_newline ())
    ladder;
  Printf.printf
    "\nTakeaway: predictable-but-unbiased branches (the transformation's\n\
     targets) stay predictable under TAGE-class predictors even in noisy\n\
     company — so the decomposed-branch speedup grows with predictor\n\
     quality, the paper's 5.3 result.\n"
