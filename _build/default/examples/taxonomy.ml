(* Figure 1 of the paper, live: one kernel, three branch behaviours, three
   compiler strategies.

   The paper's taxonomy assigns conditional forward branches to transforms
   by (bias, predictability):

                      highly biased     |  low biased
     predictable      superblocks       |  THIS PAPER (decomposition)
     unpredictable    (rarely occurs)   |  predication

   This example builds the same hammock kernel three times — with a highly
   biased stream, a predictable-but-unbiased stream, and an unpredictable
   stream — and applies assert conversion (superblock straightening),
   the Decomposed Branch Transformation, and if-conversion (predication)
   to each, reporting 4-wide cycles.

   Run with: dune exec examples/taxonomy.exe *)

open Bv_isa
open Bv_ir

let r = Reg.make
let movi d v = Instr.Mov { dst = r d; src = Instr.Imm v }
let addi d a v = Instr.Alu { op = Instr.Add; dst = r d; src1 = r a; src2 = Instr.Imm v }
let ld d b o = Instr.Load { dst = r d; base = r b; offset = o; speculative = false }
let st s b o = Instr.Store { src = r s; base = r b; offset = o }
let block ?(body = []) label term = Block.make ~label ~body ~term

let kernel ~n stream =
  Program.make ~main:"m" ~mem_words:2048
    ~segments:[ { Program.base = 0; contents = stream } ]
    [ Proc.make ~name:"m"
        [ block ~body:[ movi 1 0; movi 6 0; movi 20 0 ] "e" (Term.Jump "rep");
          block ~body:[ movi 1 0 ] "rep" (Term.Jump "head");
          block
            ~body:
              [ Instr.Alu { op = Instr.Shl; dst = r 2; src1 = r 1; src2 = Instr.Imm 3 };
                ld 4 2 0;
                Instr.Cmp { op = Instr.Ne; dst = r 5; src1 = r 4; src2 = Instr.Imm 0 }
              ]
            "head"
            (Term.Branch { on = true; src = r 5; taken = "c"; not_taken = "b"; id = 1 });
          block
            ~body:[ ld 10 2 8192; ld 11 2 8200; addi 6 6 1;
                    Instr.Alu { op = Instr.Add; dst = r 6; src1 = r 6; src2 = Instr.Reg (r 10) } ]
            "b" (Term.Jump "latch");
          block
            ~body:[ ld 12 2 8208;
                    Instr.Alu { op = Instr.Add; dst = r 6; src1 = r 6; src2 = Instr.Reg (r 12) } ]
            "c" (Term.Jump "latch");
          block
            ~body:
              [ addi 1 1 1;
                Instr.Cmp { op = Instr.Lt; dst = r 5; src1 = r 1; src2 = Instr.Imm n }
              ]
            "latch"
            (Term.Branch { on = true; src = r 5; taken = "head"; not_taken = "outer"; id = 2 });
          block
            ~body:
              [ addi 20 20 1;
                Instr.Cmp { op = Instr.Lt; dst = r 5; src1 = r 20; src2 = Instr.Imm 8 }
              ]
            "outer"
            (Term.Branch { on = true; src = r 5; taken = "rep"; not_taken = "out"; id = 3 });
          block ~body:[ st 6 0 16000 ] "out" Term.Halt
        ]
    ]

let candidate =
  { Vanguard.Select.proc = "m"; block = "head"; site = 1; bias = 0.5;
    predictability = 0.5; executed = 0 }

let cycles img =
  (Bv_pipeline.Machine.run ~config:Bv_pipeline.Config.four_wide img)
    .Bv_pipeline.Machine.stats.Bv_pipeline.Stats.cycles

let spd base img = 100.0 *. ((Float.of_int base /. Float.of_int (cycles img)) -. 1.0)

let () =
  let n = 512 in
  let rng = Bv_workloads.Rng.create ~seed:5 in
  let streams =
    [ ( "highly biased   (0.96 / pred 0.96)",
        Bv_workloads.Stream.sequence ~noise:1.0 ~rng ~taken_rate:0.04
          ~predictability:0.96 ~length:n (),
        false (* likely direction: not taken *) );
      ( "predictable     (0.60 / pred 0.96)",
        Bv_workloads.Stream.sequence ~rng ~taken_rate:0.6 ~predictability:0.96
          ~length:n (),
        true );
      ( "unpredictable   (0.55 / pred 0.55)",
        Bv_workloads.Stream.sequence ~noise:1.0 ~rng ~taken_rate:0.55
          ~predictability:0.55 ~length:n (),
        true )
    ]
  in
  Printf.printf "%-38s %10s %12s %12s %12s\n" "branch behaviour" "baseline"
    "superblock%" "decompose%" "predicate%";
  List.iter
    (fun (name, stream, likely) ->
      let prog = kernel ~n (Bv_workloads.Stream.to_words stream) in
      Bv_sched.Sched.schedule_program prog;
      let base = cycles (Layout.program prog) in
      let asserted =
        (Vanguard.Assertconv.apply ~candidates:[ (candidate, likely) ] prog)
          .Vanguard.Assertconv.program
      in
      let decomposed =
        (Vanguard.Transform.apply ~candidates:[ candidate ] prog)
          .Vanguard.Transform.program
      in
      let predicated =
        (Vanguard.Predicate.apply ~null_sink:16376 ~candidates:[ candidate ]
           prog)
          .Vanguard.Predicate.program
      in
      Printf.printf "%-38s %10d %12.1f %12.1f %12.1f\n" name base
        (spd base (Layout.program asserted))
        (spd base (Layout.program decomposed))
        (spd base (Layout.program predicated)))
    streams;
  print_endline
    "\nRead along Figure 1: superblock straightening only works when the\n\
     branch is near-unidirectional; decomposition keeps winning as long as\n\
     the branch is predictable (its whole point is that bias is not\n\
     required); predication is the only transform whose value survives\n\
     total unpredictability (and on this in-order it must also beat the\n\
     fetch-and-issue cost of both arms)."
