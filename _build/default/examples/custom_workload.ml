(* Build a custom synthetic benchmark from a Spec, run the full pipeline
   (generate -> profile -> select -> transform -> simulate), and show how
   the workload knobs move the result — a miniature of the calibration the
   suite files do for every SPEC benchmark.

   Run with: dune exec examples/custom_workload.exe *)

open Bv_harness
open Bv_workloads

let base_spec ~name ~eligible ~biased ~hard ~hoist ~loads ~cond_depth =
  Spec.make ~name ~suite:Spec.Int_2006 ~seed:4242
    ~branch_classes:
      [ Spec.cls ~count:eligible ~taken_rate:0.6 ~predictability:0.96 ();
        Spec.cls ~iid:true ~count:biased ~taken_rate:0.94
          ~predictability:0.94 ();
        Spec.cls ~iid:true ~count:hard ~taken_rate:0.5 ~predictability:0.5 ()
      ]
    ~loads_per_block:loads ~hoist_frac:hoist ~cond_depth ~inner_n:128 ~reps:6
    ()

let report spec =
  let b = Runner.prepare spec in
  let sel = Runner.selection b in
  let spd = Runner.avg_speedup b ~width:4 in
  Printf.printf
    "%-22s PBC %5.1f%%  PISCS %5.1f%%  4-wide speedup %+6.2f%%\n%!"
    spec.Spec.name (Vanguard.Select.pbc sel) (Runner.piscs b) spd

let () =
  print_endline "Custom workloads through the full pipeline:";
  print_endline "";
  (* the reference point *)
  report
    (base_spec ~name:"reference" ~eligible:8 ~biased:10 ~hard:2 ~hoist:0.8
       ~loads:3.0 ~cond_depth:6);
  (* fewer convertible branches -> less speedup *)
  report
    (base_spec ~name:"few-candidates" ~eligible:3 ~biased:16 ~hard:1
       ~hoist:0.8 ~loads:3.0 ~cond_depth:6);
  (* nothing hoistable (stores open every successor) -> the predict/resolve
     split has nothing to overlap *)
  report
    (base_spec ~name:"nothing-hoistable" ~eligible:8 ~biased:10 ~hard:2
       ~hoist:0.05 ~loads:3.0 ~cond_depth:6);
  (* quick branch resolution -> little to cover in the first place *)
  report
    (base_spec ~name:"fast-resolution" ~eligible:8 ~biased:10 ~hard:2
       ~hoist:0.8 ~loads:3.0 ~cond_depth:0);
  (* unpredictable company erodes the prediction the technique leans on *)
  report
    (base_spec ~name:"noisy-neighbours" ~eligible:8 ~biased:4 ~hard:8
       ~hoist:0.8 ~loads:3.0 ~cond_depth:6);
  print_endline "";
  print_endline
    "Each knob maps to a Table 2 column: eligible share -> PBC, hoist\n\
     fraction -> PHI, condition depth -> ASPCB, hard-branch count -> MPPKI.";
  print_endline
    "The suite files (lib/workloads/suites.ml) set these per SPEC benchmark."
