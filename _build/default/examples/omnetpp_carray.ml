(* The paper's Figure 6 walk-through: the hot branch in SPEC 2006
   omnetpp's cArray::add(cObject* ). Simplified as in the paper:

     A:  load  this->size        (line 1, simplified)
         load  this->count
         cmp   count < size      (lines 2-3)
         br    full -> C / room -> B
     B:  load items; load firstfree; store item   (lines 5-7, grow-free path)
     C:  load capacity; ... (resize path)         (line 40)

   The branch is ~60/40 but ~90% predictable on both paths (the array
   alternates between growth spurts and steady inserts). The transformation
   overlaps A's loads with the loads of whichever successor is predicted —
   the load-latency win the paper calls out.

   Run with: dune exec examples/omnetpp_carray.exe *)

open Bv_isa
open Bv_ir

let r = Reg.make

(* register conventions for the snippet *)
let r_this = r 1 (* object base *)
let r_i = r 2 (* insert loop counter *)
let r_count = r 4
let r_cc = r 5
let r_items = r 10
let r_free = r 11
let r_cap = r 12

let carray_add ~n ~stream =
  Program.make ~main:"main" ~mem_words:4096
    ~segments:[ { Program.base = 0; contents = stream } ]
    [ Proc.make ~name:"main"
        [ Block.make ~label:"entry"
            ~body:
              [ Instr.Mov { dst = r_i; src = Instr.Imm 0 };
                Instr.Mov { dst = r_this; src = Instr.Imm 8192 }
              ]
            ~term:(Term.Jump "add");
          (* A: the capacity check of cArray::add *)
          Block.make ~label:"add"
            ~body:
              [ Instr.Alu { op = Instr.Shl; dst = r 6; src1 = r_i;
                            src2 = Instr.Imm 3 };
                (* the simplified condition: a pre-recorded full/room
                   outcome stream stands in for count<size on the evolving
                   array *)
                Instr.Load { dst = r_count; base = r 6; offset = 0;
                             speculative = false };
                Instr.Cmp { op = Instr.Ne; dst = r_cc; src1 = r_count;
                            src2 = Instr.Imm 0 }
              ]
            ~term:
              (Term.Branch
                 { on = true; src = r_cc; taken = "resize";
                   not_taken = "insert"; id = 1 });
          (* B: room available — load items base and firstfree, store item *)
          Block.make ~label:"insert"
            ~body:
              [ Instr.Load { dst = r_items; base = r_this; offset = 0;
                             speculative = false };
                Instr.Load { dst = r_free; base = r_this; offset = 8;
                             speculative = false };
                Instr.Alu { op = Instr.Add; dst = r_free; src1 = r_free;
                            src2 = Instr.Reg r_items };
                Instr.Alu { op = Instr.And; dst = r_free; src1 = r_free;
                            src2 = Instr.Imm 16376 };
                Instr.Store { src = r_i; base = r_free; offset = 8192 }
              ]
            ~term:(Term.Jump "next");
          (* C: full — consult capacity and "grow" *)
          Block.make ~label:"resize"
            ~body:
              [ Instr.Load { dst = r_cap; base = r_this; offset = 16;
                             speculative = false };
                Instr.Alu { op = Instr.Add; dst = r_cap; src1 = r_cap;
                            src2 = Instr.Imm 16 };
                Instr.Store { src = r_cap; base = r_this; offset = 16 }
              ]
            ~term:(Term.Jump "next");
          Block.make ~label:"next"
            ~body:
              [ Instr.Alu { op = Instr.Add; dst = r_i; src1 = r_i;
                            src2 = Instr.Imm 1 };
                Instr.Cmp { op = Instr.Lt; dst = r_cc; src1 = r_i;
                            src2 = Instr.Imm n }
              ]
            ~term:
              (Term.Branch
                 { on = true; src = r_cc; taken = "add"; not_taken = "done";
                   id = 2 });
          Block.make ~label:"done" ~body:[] ~term:Term.Halt
        ]
    ]

let () =
  let n = 1000 in
  let rng = Bv_workloads.Rng.create ~seed:7 in
  (* 40% of adds hit the resize path, but predictably (90% both ways) *)
  let stream =
    Bv_workloads.Stream.to_words
      (Bv_workloads.Stream.sequence ~rng ~taken_rate:0.4 ~predictability:0.9
         ~length:n ())
  in
  let prog = carray_add ~n ~stream in
  Bv_sched.Sched.schedule_program prog;
  let before = Layout.program prog in
  Format.printf "== cArray::add, baseline ==@.%a@." Layout.pp_disassembly
    before;
  let predictor = Bv_bpred.Kind.create Bv_bpred.Kind.Tournament in
  let profile = Bv_profile.Profile.collect ~predictor before in
  let selection = Vanguard.Select.select ~profile prog in
  let result =
    Vanguard.Transform.apply
      ~candidates:selection.Vanguard.Select.candidates prog
  in
  let after = Layout.program result.Vanguard.Transform.program in
  Format.printf "@.== after the Decomposed Branch Transformation ==@.";
  Format.printf
    "(compare with the paper's Figure 6: predict in A, condition slice and@.";
  Format.printf
    " speculative ld+ in both resolution blocks, correction blocks cold)@.@.";
  Format.printf "%a@." Layout.pp_disassembly after;
  let d0 = Bv_exec.Interp.arch_digest (Bv_exec.Interp.run before) in
  let d1 = Bv_exec.Interp.arch_digest (Bv_exec.Interp.run after) in
  assert (d0 = d1);
  let config = Bv_pipeline.Config.four_wide in
  let base = Bv_pipeline.Machine.run ~config before in
  let exp = Bv_pipeline.Machine.run ~config after in
  let open Bv_pipeline in
  Format.printf
    "@.baseline %d cycles, transformed %d cycles: %+.2f%% speedup@."
    base.Machine.stats.Stats.cycles exp.Machine.stats.Stats.cycles
    (100.0
    *. (Float.of_int base.Machine.stats.Stats.cycles
        /. Float.of_int exp.Machine.stats.Stats.cycles
       -. 1.0))
