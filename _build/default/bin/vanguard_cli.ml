(* Command-line driver: run benchmarks, inspect profiles and
   transformations, and regenerate the paper's experiments. *)

open Bv_bpred
open Bv_harness
open Bv_ir
open Bv_pipeline
open Bv_workloads
open Cmdliner

let spec_of_name name =
  match Suites.find name with
  | Some s -> Ok s
  | None ->
    Error
      (Printf.sprintf "unknown benchmark %s (try `vanguard_cli list`)" name)

let bench_arg =
  let doc = "Benchmark name (see `vanguard_cli list`)." in
  Arg.(required & opt (some string) None & info [ "b"; "benchmark" ] ~doc)

let width_arg =
  let doc = "Machine width: 2, 4 or 8." in
  Arg.(value & opt int 4 & info [ "w"; "width" ] ~doc)

let input_arg =
  let doc = "REF input index (1-based; 0 is the TRAIN input)." in
  Arg.(value & opt int 1 & info [ "i"; "input" ] ~doc)

let predictor_arg =
  let doc = "Branch predictor (bimodal, gshare, tournament, tage, isl-tage, \
             perfect)." in
  let parse s =
    match Kind.of_name s with
    | Some k -> Ok k
    | None -> Error (`Msg ("unknown predictor " ^ s))
  in
  let print ppf k = Format.pp_print_string ppf (Kind.name k) in
  Arg.(
    value
    & opt (conv (parse, print)) Kind.Tournament
    & info [ "p"; "predictor" ] ~doc)

(* ----------------------------------------------------------------- list *)

let list_cmd =
  let run () =
    print_endline "Benchmarks:";
    List.iter
      (fun s ->
        Printf.printf "  %-12s %s\n" s.Spec.name (Spec.suite_name s.Spec.suite))
      Suites.all;
    print_endline "\nExperiments:";
    List.iter
      (fun (id, desc, _) -> Printf.printf "  %-10s %s\n" id desc)
      Experiments.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks and experiments.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ run *)

let run_cmd =
  let run name width input predictor =
    match spec_of_name name with
    | Error e -> prerr_endline e; 1
    | Ok spec ->
      let b = Runner.prepare ~predictor spec in
      let pair = Runner.simulate ~predictor b ~input ~width in
      let show tag (r : Machine.result) =
        Format.printf "--- %s ---@.%a@.L1-D miss rate %.3f@.@." tag Stats.pp
          r.Machine.stats
          (Bv_cache.Sa_cache.miss_rate (Bv_cache.Hierarchy.l1d r.Machine.hierarchy))
      in
      Format.printf "%s, %d-wide, %s, input %d@.@." name width
        (Kind.name predictor) input;
      show "baseline" pair.Runner.base;
      show "decomposed-branch (vanguard)" pair.Runner.exp;
      Format.printf "speedup: %+.2f%%@." pair.Runner.speedup_pct;
      0
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Simulate one benchmark, baseline vs transformed, and report.")
    Term.(const run $ bench_arg $ width_arg $ input_arg $ predictor_arg)

(* -------------------------------------------------------------- profile *)

let profile_cmd =
  let run name predictor =
    match spec_of_name name with
    | Error e -> prerr_endline e; 1
    | Ok spec ->
      let b = Runner.prepare ~predictor spec in
      Format.printf "%a@." Bv_profile.Profile.pp (Runner.profile b);
      0
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Profile a benchmark's TRAIN input: per-site bias and \
             predictability.")
    Term.(const run $ bench_arg $ predictor_arg)

(* ------------------------------------------------------------ transform *)

let transform_cmd =
  let run name disasm =
    match spec_of_name name with
    | Error e -> prerr_endline e; 1
    | Ok spec ->
      let b = Runner.prepare spec in
      let sel = Runner.selection b in
      let tr = Runner.transform b in
      Format.printf
        "%s: %d/%d forward branches selected (PBC %.1f%%), %d skipped@."
        name
        (List.length sel.Vanguard.Select.candidates)
        sel.Vanguard.Select.static_forward_branches
        (Vanguard.Select.pbc sel)
        (List.length tr.Vanguard.Transform.skipped);
      List.iter
        (fun (id, why) -> Format.printf "  skipped site %d: %s@." id why)
        tr.Vanguard.Transform.skipped;
      List.iter
        (fun r ->
          Format.printf
            "  site %3d: slice %d, hoisted %d/%d (nt/t), PHI %.0f%%@."
            r.Vanguard.Transform.site r.Vanguard.Transform.slice_size
            r.Vanguard.Transform.hoisted_not_taken
            r.Vanguard.Transform.hoisted_taken
            (Vanguard.Transform.phi r))
        tr.Vanguard.Transform.reports;
      Format.printf "static instructions: %d -> %d (PISCS %.1f%%)@."
        tr.Vanguard.Transform.static_instrs_before
        tr.Vanguard.Transform.static_instrs_after (Runner.piscs b);
      if disasm then
        Format.printf "@.%a@." Layout.pp_disassembly
          (Runner.experimental_program b ~input:1);
      0
  in
  let disasm_arg =
    Arg.(value & flag & info [ "disasm" ] ~doc:"Print the transformed code.")
  in
  Cmd.v
    (Cmd.info "transform"
       ~doc:"Show candidate selection and transformation details.")
    Term.(const run $ bench_arg $ disasm_arg)

(* ----------------------------------------------------------- experiment *)

let experiment_cmd =
  let run ids =
    let ppf = Format.std_formatter in
    let ids = if ids = [ "all" ] then List.map (fun (i, _, _) -> i)
                  Experiments.all
              else ids in
    let rec go = function
      | [] -> 0
      | id :: rest ->
        (match Experiments.find id with
        | Some f ->
          f ppf;
          go rest
        | None ->
          Printf.eprintf "unknown experiment %s\n" id;
          1)
    in
    go ids
  in
  let ids_arg =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"EXPERIMENT")
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate the paper's tables and figures ('all' for every \
             one).")
    Term.(const run $ ids_arg)

(* ------------------------------------------------------------------ dot *)

let dot_cmd =
  let run name transformed =
    match spec_of_name name with
    | Error e -> prerr_endline e; 1
    | Ok spec ->
      let program =
        if transformed then
          (Runner.transform (Runner.prepare spec)).Vanguard.Transform.program
        else Gen.generate ~input:1 spec
      in
      Format.printf "%a@." (Bv_ir.Dot.program ~bodies:false) program;
      0
  in
  let transformed_arg =
    Arg.(value & flag & info [ "transformed" ]
           ~doc:"Export the decomposed-branch version.")
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Export a benchmark's CFG as Graphviz (pipe into `dot -Tsvg`).")
    Term.(const run $ bench_arg $ transformed_arg)

(* ---------------------------------------------------------------- trace *)

let trace_cmd =
  let run name width rows transformed =
    match spec_of_name name with
    | Error e -> prerr_endline e; 1
    | Ok spec ->
      let b = Runner.prepare spec in
      let image =
        if transformed then Runner.experimental_program b ~input:1
        else Runner.baseline_program b ~input:1
      in
      let config = Config.make ~width () in
      let trace, result = Trace.collect ~max_rows:rows ~config image in
      Format.printf "%a@." Trace.pp trace;
      Format.printf "@.%a@." Stats.pp result.Machine.stats;
      0
  in
  let rows_arg =
    Arg.(value & opt int 60 & info [ "n"; "rows" ]
           ~doc:"Instructions to trace.")
  in
  let transformed_arg =
    Arg.(value & flag & info [ "transformed" ]
           ~doc:"Trace the decomposed-branch version.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Per-instruction pipeline trace (fetch/issue/complete cycles).")
    Term.(const run $ bench_arg $ width_arg $ rows_arg $ transformed_arg)

(* ------------------------------------------------------------- assemble *)

let assemble_cmd =
  let run path simulate =
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error e -> prerr_endline e; 1
    | text -> (
      match Bv_ir.Asm.program text with
      | exception Bv_ir.Asm.Parse_error (line, msg) ->
        Printf.eprintf "%s:%d: %s\n" path line msg;
        1
      | prog ->
        let image = Layout.program prog in
        Format.printf "%a@." Layout.pp_disassembly image;
        if simulate then begin
          let st = Bv_exec.Interp.run image in
          Format.printf "interpreter: %d instructions, halted=%b@."
            st.Bv_exec.Interp.instr_count st.Bv_exec.Interp.halted;
          let res = Machine.run ~config:Config.four_wide image in
          Format.printf "%a@." Stats.pp res.Machine.stats
        end;
        0)
  in
  let path_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let simulate_arg =
    Arg.(value & flag & info [ "run" ] ~doc:"Also interpret and simulate.")
  in
  Cmd.v
    (Cmd.info "assemble"
       ~doc:"Assemble a hidden-ISA source file; print its layout.")
    Term.(const run $ path_arg $ simulate_arg)

(* --------------------------------------------------------------- disasm *)

let disasm_cmd =
  let run name =
    match spec_of_name name with
    | Error e -> prerr_endline e; 1
    | Ok spec ->
      let image = Layout.program (Gen.generate ~input:1 spec) in
      Format.printf "%a@." Layout.pp_disassembly image;
      0
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a benchmark's baseline code.")
    Term.(const run $ bench_arg)

let main =
  let doc =
    "Branch Vanguard: decomposed branch prediction/resolution (ISCA 2015) \
     reproduction."
  in
  Cmd.group (Cmd.info "vanguard_cli" ~doc)
    [ list_cmd; run_cmd; profile_cmd; transform_cmd; experiment_cmd;
      disasm_cmd; dot_cmd; assemble_cmd; trace_cmd
    ]

let () = exit (Cmd.eval' main)
