(* Tests for the DBT-facing extensions: binary encoding, control-flow
   recovery, the cmov primitive, and the predication (if-conversion) pass. *)

open Bv_isa
open Bv_ir

let r = Reg.make
let movi d v = Instr.Mov { dst = r d; src = Instr.Imm v }
let addi d a v = Instr.Alu { op = Instr.Add; dst = r d; src1 = r a; src2 = Instr.Imm v }
let add d a b = Instr.Alu { op = Instr.Add; dst = r d; src1 = r a; src2 = Instr.Reg (r b) }
let ld d b o = Instr.Load { dst = r d; base = r b; offset = o; speculative = false }
let st s b o = Instr.Store { src = r s; base = r b; offset = o }
let block ?(body = []) label term = Block.make ~label ~body ~term

(* ------------------------------------------------------------- encoding *)

let instr = Alcotest.testable Instr.pp ( = )

let roundtrip i =
  let resolve = function "far" -> 1234 | _ -> 7 in
  let label_of = function 1234 -> "far" | 7 -> "near" | _ -> "?" in
  Encoding.decode ~label_of (Encoding.encode ~resolve i)

let test_encoding_examples () =
  List.iter
    (fun i -> Alcotest.check instr (Instr.to_string i) i (roundtrip i))
    [ Instr.Nop;
      Instr.Halt;
      Instr.Ret;
      addi 5 9 (-123456);
      add 1 2 3;
      Instr.Fpu { op = Instr.Mul; dst = r 63; src1 = r 0; src2 = Instr.Reg (r 31) };
      movi 7 (max_int asr 30);
      Instr.Mov { dst = r 1; src = Instr.Reg (r 2) };
      Instr.Load { dst = r 8; base = r 9; offset = 262144; speculative = true };
      ld 8 9 (-64);
      st 3 4 8192;
      Instr.Cmp { op = Instr.Le; dst = r 5; src1 = r 6; src2 = Instr.Imm 0 };
      Instr.Cmov { on = false; cond = r 5; dst = r 6; src = Instr.Imm 42 };
      Instr.Cmov { on = true; cond = r 5; dst = r 6; src = Instr.Reg (r 7) };
      Instr.Branch { on = true; src = r 5; target = "far"; id = 999_999 };
      Instr.Jump "far";
      Instr.Call "near";
      Instr.Predict { target = "far"; id = 12 };
      Instr.Resolve
        { on = false; src = r 4; target = "far"; predicted_taken = true;
          id = 910_000 }
    ]

let test_encoding_errors () =
  let resolve _ = 0 in
  (match Encoding.encode ~resolve (movi 1 (1 lsl 40)) with
  | exception Encoding.Encoding_error _ -> ()
  | _ -> Alcotest.fail "oversized immediate accepted");
  (match
     Encoding.encode ~resolve
       (Instr.Branch { on = true; src = r 1; target = "x"; id = 1 lsl 21 })
   with
  | exception Encoding.Encoding_error _ -> ()
  | _ -> Alcotest.fail "oversized site id accepted");
  Alcotest.(check bool) "encodable" true (Encoding.encodable_imm 1000);
  Alcotest.(check bool) "not encodable" false (Encoding.encodable_imm (1 lsl 40))

let prop_encoding_roundtrip =
  let open QCheck2.Gen in
  let reg = map r (int_bound 63) in
  let operand =
    oneof
      [ map (fun r -> Instr.Reg r) reg;
        map (fun v -> Instr.Imm v) (int_range (-100000) 100000)
      ]
  in
  let alu_op = oneofl Instr.[ Add; Sub; And; Or; Xor; Shl; Shr; Mul ] in
  let cmp_op = oneofl Instr.[ Eq; Ne; Lt; Ge; Le; Gt ] in
  let gen =
    oneof
      [ return Instr.Nop;
        map3 (fun op (d, s1) s2 -> Instr.Alu { op; dst = d; src1 = s1; src2 = s2 })
          alu_op (pair reg reg) operand;
        map3 (fun op (d, s1) s2 -> Instr.Fpu { op; dst = d; src1 = s1; src2 = s2 })
          alu_op (pair reg reg) operand;
        map2 (fun d s -> Instr.Mov { dst = d; src = s }) reg operand;
        map3
          (fun (d, b) o s ->
            Instr.Load { dst = d; base = b; offset = o * 8; speculative = s })
          (pair reg reg) (int_range (-1000) 1000) bool;
        map3 (fun (s, b) o () -> Instr.Store { src = s; base = b; offset = o * 8 })
          (pair reg reg) (int_range 0 1000) unit;
        map3 (fun op (d, s1) s2 -> Instr.Cmp { op; dst = d; src1 = s1; src2 = s2 })
          cmp_op (pair reg reg) operand;
        map3 (fun (c, d) s on -> Instr.Cmov { on; cond = c; dst = d; src = s })
          (pair reg reg) operand bool
      ]
  in
  QCheck2.Test.make ~name:"encode/decode roundtrip" ~count:500 gen
    (fun i -> roundtrip i = i)

(* -------------------------------------------------------------- recover *)

let hammock_image () =
  let prog =
    Program.make ~main:"m" ~mem_words:64
      ~segments:[ { Program.base = 0; contents = Array.init 16 (fun i -> i land 1) } ]
      [ Proc.make ~name:"m"
          [ block ~body:[ movi 1 0; movi 6 0 ] "e" (Term.Jump "head");
            block
              ~body:
                [ Instr.Alu { op = Instr.Shl; dst = r 2; src1 = r 1; src2 = Instr.Imm 3 };
                  ld 4 2 0;
                  Instr.Cmp { op = Instr.Ne; dst = r 5; src1 = r 4; src2 = Instr.Imm 0 }
                ]
              "head"
              (Term.Branch { on = true; src = r 5; taken = "c"; not_taken = "b"; id = 1 });
            block ~body:[ addi 6 6 1 ] "b" (Term.Jump "latch");
            block ~body:[ addi 6 6 2 ] "c" (Term.Jump "latch");
            block
              ~body:
                [ addi 1 1 1;
                  Instr.Cmp { op = Instr.Lt; dst = r 5; src1 = r 1; src2 = Instr.Imm 16 }
                ]
              "latch"
              (Term.Branch { on = true; src = r 5; taken = "head"; not_taken = "out"; id = 2 });
            block ~body:[ st 6 0 256 ] "out"
              (Term.Call { target = "f"; return_to = "fin" });
            block "fin" Term.Halt
          ];
        Proc.make ~name:"f" [ block ~body:[ addi 6 6 100 ] "f0" Term.Ret ]
      ]
  in
  Layout.program prog

let test_recover_roundtrip () =
  let img = hammock_image () in
  let recovered = Recover.image img in
  Validate.check_exn recovered;
  let img2 = Layout.program recovered in
  Alcotest.(check int) "same length" (Array.length img.Layout.code)
    (Array.length img2.Layout.code);
  Array.iteri
    (fun pc i ->
      let j = img2.Layout.code.(pc) in
      (* instructions are equal modulo label renaming: compare printed
         opcodes and operands with labels erased *)
      let erase s = String.map (fun c -> if c = '@' then '_' else c) s in
      let shape i =
        match Instr.branch_target i with
        | None -> erase (Instr.to_string i)
        | Some _ -> "" (* checked via resolved targets below *)
      in
      Alcotest.(check string) (Printf.sprintf "pc %d" pc) (shape i) (shape j);
      match (Instr.branch_target i, Instr.branch_target j) with
      | Some li, Some lj ->
        Alcotest.(check int)
          (Printf.sprintf "target at %d" pc)
          (Layout.resolve img li) (Layout.resolve img2 lj)
      | None, None -> ()
      | _ -> Alcotest.failf "target shape mismatch at %d" pc)
    img.Layout.code

let test_recover_preserves_semantics () =
  let img = hammock_image () in
  let recovered = Recover.image img in
  let img2 = Layout.program recovered in
  Alcotest.(check int) "digest"
    (Bv_exec.Interp.arch_digest (Bv_exec.Interp.run img))
    (Bv_exec.Interp.arch_digest (Bv_exec.Interp.run img2))

let test_recover_workload () =
  (* a transformed generated benchmark (predicts/resolves included) *)
  let spec =
    Bv_workloads.Spec.make ~name:"rec" ~suite:Bv_workloads.Spec.Int_2006
      ~seed:77
      ~branch_classes:
        [ Bv_workloads.Spec.cls ~count:4 ~taken_rate:0.6 ~predictability:0.95
            ()
        ]
      ~inner_n:32 ~reps:2 ()
  in
  let prog = Bv_workloads.Gen.generate ~input:1 spec in
  let image = Layout.program prog in
  let profile =
    Bv_profile.Profile.collect
      ~predictor:(Bv_bpred.Kind.create Bv_bpred.Kind.Tournament)
      image
  in
  let sel =
    Vanguard.Select.select ~threshold:(-1.0) ~min_executed:1 ~profile prog
  in
  let transformed =
    (Vanguard.Transform.apply ~candidates:sel.Vanguard.Select.candidates prog)
      .Vanguard.Transform.program
  in
  let timg = Layout.program transformed in
  let rimg = Layout.program (Recover.image timg) in
  Alcotest.(check int) "digest after recover"
    (Bv_exec.Interp.arch_digest (Bv_exec.Interp.run timg))
    (Bv_exec.Interp.arch_digest (Bv_exec.Interp.run rimg))

(* ----------------------------------------------------------------- cmov *)

let test_cmov_semantics () =
  let prog =
    Program.make ~main:"m" ~mem_words:4
      [ Proc.make ~name:"m"
          [ block
              ~body:
                [ movi 1 1; movi 2 100; movi 3 200;
                  Instr.Cmov { on = true; cond = r 1; dst = r 2; src = Instr.Imm 7 };
                  Instr.Cmov { on = false; cond = r 1; dst = r 3; src = Instr.Imm 7 };
                  st 2 0 0; st 3 0 8
                ]
              "e" Term.Halt
          ]
      ]
  in
  let stt = Bv_exec.Interp.run (Layout.program prog) in
  Alcotest.(check int) "fires on nz" 7 stt.Bv_exec.Interp.mem.(0);
  Alcotest.(check int) "holds on z-mismatch" 200 stt.Bv_exec.Interp.mem.(1);
  (* machine agrees *)
  let res =
    Bv_pipeline.Machine.run ~config:Bv_pipeline.Config.four_wide
      (Layout.program prog)
  in
  Alcotest.(check int) "machine digest"
    (Bv_exec.Interp.arch_digest stt)
    res.Bv_pipeline.Machine.arch_digest

let test_cmov_dst_is_use () =
  (* the scheduler must not move a cmov above the producer of its dst *)
  let producer = movi 2 5 in
  let cm = Instr.Cmov { on = true; cond = r 1; dst = r 2; src = Instr.Imm 9 } in
  let out = Bv_sched.Sched.schedule_body ~term:Term.Halt [ producer; cm ] in
  Alcotest.(check bool) "order kept" true
    (match out with [ a; _ ] -> a == producer | _ -> false)

(* ------------------------------------------------------------ predicate *)

let pred_hammock ~n ~b_body ~c_body stream =
  Program.make ~main:"m" ~mem_words:512
    ~segments:[ { Program.base = 0; contents = stream } ]
    [ Proc.make ~name:"m"
        [ block ~body:[ movi 1 0; movi 6 0 ] "e" (Term.Jump "head");
          block
            ~body:
              [ Instr.Alu { op = Instr.Shl; dst = r 2; src1 = r 1; src2 = Instr.Imm 3 };
                ld 4 2 0;
                Instr.Cmp { op = Instr.Ne; dst = r 5; src1 = r 4; src2 = Instr.Imm 0 }
              ]
            "head"
            (Term.Branch { on = true; src = r 5; taken = "c"; not_taken = "b"; id = 1 });
          block ~body:b_body "b" (Term.Jump "latch");
          block ~body:c_body "c" (Term.Jump "latch");
          block
            ~body:
              [ addi 1 1 1;
                Instr.Cmp { op = Instr.Lt; dst = r 5; src1 = r 1; src2 = Instr.Imm n }
              ]
            "latch"
            (Term.Branch { on = true; src = r 5; taken = "head"; not_taken = "out"; id = 2 });
          block ~body:[ st 6 0 3000 ] "out" Term.Halt
        ]
    ]

let candidate = { Vanguard.Select.proc = "m"; block = "head"; site = 1;
                  bias = 0.5; predictability = 0.5; executed = 100 }

(* exclude the null sink word from the comparison: losing arms park their
   stores there *)
let digest_ignoring_sink ~sink img policy =
  let stt = Bv_exec.Interp.run ~predict_policy:policy img in
  stt.Bv_exec.Interp.mem.(sink / 8) <- 0;
  Bv_exec.Interp.mem_digest stt

let test_predication_equivalence () =
  let n = 40 in
  let stream = Array.init n (fun i -> (i * 5) mod 3 land 1) in
  let b_body = [ ld 10 2 8; add 6 6 10; st 6 0 3008 ] in
  let c_body = [ ld 11 2 16; Instr.Alu { op = Instr.Mul; dst = r 11; src1 = r 11; src2 = Instr.Imm 3 };
                 add 6 6 11 ] in
  let prog = pred_hammock ~n ~b_body ~c_body stream in
  let sink = 504 * 8 in
  let result =
    Vanguard.Predicate.apply ~null_sink:sink ~candidates:[ candidate ] prog
  in
  Alcotest.(check int) "converted" 1
    (List.length result.Vanguard.Predicate.reports);
  let before = Layout.program prog in
  let after = Layout.program result.Vanguard.Predicate.program in
  let nt = (fun ~pc:_ ~id:_ -> false) in
  Alcotest.(check int) "memory equal (modulo sink)"
    (digest_ignoring_sink ~sink before nt)
    (digest_ignoring_sink ~sink after nt);
  (* the branch is gone *)
  let has_branch =
    Array.exists
      (function Instr.Branch { id = 1; _ } -> true | _ -> false)
      after.Layout.code
  in
  Alcotest.(check bool) "branch eliminated" false has_branch;
  (* and the machine runs it with zero mispredicts on site 1 *)
  let res =
    Bv_pipeline.Machine.run ~config:Bv_pipeline.Config.four_wide after
  in
  Alcotest.(check bool) "finished" true res.Bv_pipeline.Machine.finished

let test_predication_cmov_in_arm () =
  (* an arm already containing a cmov: the temp must be seeded with the
     prior value so a false inner condition keeps it *)
  let n = 24 in
  let stream = Array.init n (fun i -> i land 1) in
  let b_body =
    [ movi 10 7;
      Instr.Cmov { on = true; cond = r 10; dst = r 6; src = Instr.Imm 42 };
      addi 6 6 1
    ]
  in
  let c_body = [ addi 6 6 5 ] in
  let prog = pred_hammock ~n ~b_body ~c_body stream in
  let sink = 504 * 8 in
  let result =
    Vanguard.Predicate.apply ~null_sink:sink ~candidates:[ candidate ] prog
  in
  Alcotest.(check int) "converted" 1
    (List.length result.Vanguard.Predicate.reports);
  let nt ~pc:_ ~id:_ = false in
  Alcotest.(check int) "equivalent"
    (digest_ignoring_sink ~sink (Layout.program prog) nt)
    (digest_ignoring_sink ~sink
       (Layout.program result.Vanguard.Predicate.program)
       nt)

let test_predication_skips () =
  let n = 8 in
  let stream = Array.make n 1 in
  (* arms that do not join are refused *)
  let prog =
    Program.make ~main:"m" ~mem_words:64
      ~segments:[ { Program.base = 0; contents = stream } ]
      [ Proc.make ~name:"m"
          [ block ~body:[ movi 1 0;
                          ld 4 1 0;
                          Instr.Cmp { op = Instr.Ne; dst = r 5; src1 = r 4; src2 = Instr.Imm 0 } ]
              "head"
              (Term.Branch { on = true; src = r 5; taken = "c"; not_taken = "b"; id = 1 });
            block "b" (Term.Jump "j1");
            block "c" (Term.Jump "j2");
            block "j1" (Term.Jump "out");
            block "j2" (Term.Jump "out");
            block "out" Term.Halt
          ]
      ]
  in
  let result =
    Vanguard.Predicate.apply ~null_sink:256 ~candidates:[ candidate ] prog
  in
  Alcotest.(check int) "skipped" 1 (List.length result.Vanguard.Predicate.skipped);
  (match Vanguard.Predicate.apply ~null_sink:3 ~candidates:[] prog with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unaligned sink accepted")

let prop_predication_equivalent =
  let open QCheck2.Gen in
  let arm =
    list_size (int_range 1 5)
      (oneof
         [ map2 (fun d o -> ld d 2 (o * 8)) (int_range 10 13) (int_range 0 4);
           map (fun v -> addi 6 6 v) (int_range 1 9);
           map (fun a -> add 6 6 a) (int_range 10 13);
           map (fun o -> st 6 0 (3000 + (o * 8))) (int_range 0 4)
         ])
  in
  QCheck2.Test.make ~name:"if-conversion preserves semantics" ~count:100
    (triple arm arm (int_range 4 40))
    (fun (b_body, c_body, n) ->
      let stream = Array.init n (fun i -> (i * 13) mod 7 / 3) in
      let prog = pred_hammock ~n ~b_body ~c_body stream in
      let sink = 504 * 8 in
      match
        Vanguard.Predicate.apply ~null_sink:sink ~candidates:[ candidate ]
          prog
      with
      | result ->
        result.Vanguard.Predicate.skipped = []
        &&
        let before = Layout.program prog in
        let after = Layout.program result.Vanguard.Predicate.program in
        let nt ~pc:_ ~id:_ = false in
        digest_ignoring_sink ~sink before nt
        = digest_ignoring_sink ~sink after nt
      | exception Invalid_argument _ -> false)

(* -------------------------------------------------------- assert conv *)

let test_assertconv_structure_and_equivalence () =
  let n = 48 in
  (* highly biased: taken once in 16 *)
  let stream = Array.init n (fun i -> if i mod 16 = 0 then 1 else 0) in
  let b_body = [ ld 10 2 8; add 6 6 10; st 6 0 3008 ] in
  let c_body = [ addi 6 6 100 ] in
  let prog = pred_hammock ~n ~b_body ~c_body stream in
  let reference =
    Bv_exec.Interp.arch_digest (Bv_exec.Interp.run (Layout.program prog))
  in
  let result =
    Vanguard.Assertconv.apply ~candidates:[ (candidate, false) ] prog
  in
  Alcotest.(check int) "converted" 1
    (List.length result.Vanguard.Assertconv.reports);
  let report = List.hd result.Vanguard.Assertconv.reports in
  Alcotest.(check bool) "likely not taken" false
    report.Vanguard.Assertconv.likely_taken;
  Alcotest.(check bool) "hoisted something" true
    (report.Vanguard.Assertconv.hoisted > 0);
  let tr = result.Vanguard.Assertconv.program in
  Validate.check_exn tr;
  let img = Layout.program tr in
  (* no predict instruction: the prediction is static layout *)
  Alcotest.(check bool) "no predicts" false
    (Array.exists
       (function Instr.Predict _ -> true | _ -> false)
       img.Layout.code);
  Alcotest.(check bool) "one resolve" true
    (Array.exists
       (function Instr.Resolve _ -> true | _ -> false)
       img.Layout.code);
  Alcotest.(check int) "equivalent" reference
    (Bv_exec.Interp.arch_digest (Bv_exec.Interp.run img));
  (* and the timing model runs it with resolve mispredicts ~ rare rate *)
  let res = Bv_pipeline.Machine.run ~config:Bv_pipeline.Config.four_wide img in
  Alcotest.(check bool) "finished" true res.Bv_pipeline.Machine.finished;
  Alcotest.(check int) "digest" reference res.Bv_pipeline.Machine.arch_digest;
  let st = res.Bv_pipeline.Machine.stats in
  Alcotest.(check bool) "asserts fire rarely" true
    (st.Bv_pipeline.Stats.resolve_mispredicts * 8
    < st.Bv_pipeline.Stats.resolve_execs)

let test_assertconv_likely_taken_side () =
  let n = 32 in
  let stream = Array.init n (fun i -> if i mod 8 = 7 then 0 else 1) in
  let b_body = [ addi 6 6 1 ] in
  let c_body = [ ld 11 2 16; add 6 6 11 ] in
  let prog = pred_hammock ~n ~b_body ~c_body stream in
  let reference =
    Bv_exec.Interp.arch_digest (Bv_exec.Interp.run (Layout.program prog))
  in
  let result =
    Vanguard.Assertconv.apply ~candidates:[ (candidate, true) ] prog
  in
  Alcotest.(check int) "converted" 1
    (List.length result.Vanguard.Assertconv.reports);
  Alcotest.(check int) "equivalent" reference
    (Bv_exec.Interp.arch_digest
       (Bv_exec.Interp.run (Layout.program result.Vanguard.Assertconv.program)))

let prop_assertconv_equivalent =
  let open QCheck2.Gen in
  let arm =
    list_size (int_range 1 5)
      (oneof
         [ map2 (fun d o -> ld d 2 (o * 8)) (int_range 10 13) (int_range 0 4);
           map (fun v -> addi 6 6 v) (int_range 1 9);
           map (fun o -> st 6 0 (3000 + (o * 8))) (int_range 0 4)
         ])
  in
  QCheck2.Test.make ~name:"assert conversion preserves semantics" ~count:100
    (triple arm arm (pair (int_range 4 40) bool))
    (fun (b_body, c_body, (n, likely)) ->
      let stream = Array.init n (fun i -> (i * 11) mod 5 / 2) in
      let prog = pred_hammock ~n ~b_body ~c_body stream in
      let reference =
        Bv_exec.Interp.arch_digest (Bv_exec.Interp.run (Layout.program prog))
      in
      match
        Vanguard.Assertconv.apply ~candidates:[ (candidate, likely) ] prog
      with
      | result ->
        Bv_exec.Interp.arch_digest
          (Bv_exec.Interp.run
             (Layout.program result.Vanguard.Assertconv.program))
        = reference
      | exception Invalid_argument _ -> false)

let () =
  Alcotest.run "dbt extensions"
    [ ( "encoding",
        [ Alcotest.test_case "examples" `Quick test_encoding_examples;
          Alcotest.test_case "errors" `Quick test_encoding_errors;
          QCheck_alcotest.to_alcotest prop_encoding_roundtrip
        ] );
      ( "recover",
        [ Alcotest.test_case "roundtrip" `Quick test_recover_roundtrip;
          Alcotest.test_case "semantics" `Quick test_recover_preserves_semantics;
          Alcotest.test_case "transformed workload" `Quick
            test_recover_workload
        ] );
      ( "cmov",
        [ Alcotest.test_case "semantics" `Quick test_cmov_semantics;
          Alcotest.test_case "dst is a use" `Quick test_cmov_dst_is_use
        ] );
      ( "predication",
        [ Alcotest.test_case "equivalence" `Quick test_predication_equivalence;
          Alcotest.test_case "cmov in arm" `Quick test_predication_cmov_in_arm;
          Alcotest.test_case "skips" `Quick test_predication_skips;
          QCheck_alcotest.to_alcotest prop_predication_equivalent
        ] );
      ( "assert conversion",
        [ Alcotest.test_case "structure + equivalence" `Quick
            test_assertconv_structure_and_equivalence;
          Alcotest.test_case "likely-taken side" `Quick
            test_assertconv_likely_taken_side;
          QCheck_alcotest.to_alcotest prop_assertconv_equivalent
        ] )
    ]
