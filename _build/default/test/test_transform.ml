open Bv_isa
open Bv_ir
open Vanguard

let r = Reg.make
let movi d v = Instr.Mov { dst = r d; src = Instr.Imm v }
let add d a b = Instr.Alu { op = Instr.Add; dst = r d; src1 = r a; src2 = Instr.Reg (r b) }
let addi d a v = Instr.Alu { op = Instr.Add; dst = r d; src1 = r a; src2 = Instr.Imm v }
let ld d b o = Instr.Load { dst = r d; base = r b; offset = o; speculative = false }
let st s b o = Instr.Store { src = r s; base = r b; offset = o }
let cmp_ne d a = Instr.Cmp { op = Instr.Ne; dst = r d; src1 = r a; src2 = Instr.Imm 0 }
let block ?(body = []) label term = Block.make ~label ~body ~term

(* A loop over a condition stream with one hammock — the canonical shape. *)
let hammock_program ?(extra_a = []) ?(b_body = None) ?(c_body = None) ~n stream
    =
  let b_body =
    Option.value b_body
      ~default:[ ld 10 2 0; ld 11 2 8; add 6 6 10; add 6 6 11; st 6 0 800 ]
  in
  let c_body =
    Option.value c_body ~default:[ ld 12 2 16; add 6 6 12; st 6 0 808 ]
  in
  Program.make ~main:"m" ~mem_words:256
    ~segments:[ { Program.base = 0; contents = stream } ]
    [ Proc.make ~name:"m"
        [ block ~body:[ movi 1 0; movi 6 0 ] "entry" (Term.Jump "head");
          block
            ~body:
              ([ Instr.Alu { op = Instr.Shl; dst = r 2; src1 = r 1; src2 = Instr.Imm 3 };
                 ld 4 2 0 ]
              @ extra_a
              @ [ cmp_ne 5 4 ])
            "head"
            (Term.Branch
               { on = true; src = r 5; taken = "c"; not_taken = "b"; id = 1 });
          block ~body:b_body "b" (Term.Jump "latch");
          block ~body:c_body "c" (Term.Jump "latch");
          block
            ~body:
              [ addi 1 1 1;
                Instr.Cmp { op = Instr.Lt; dst = r 5; src1 = r 1; src2 = Instr.Imm n }
              ]
            "latch"
            (Term.Branch
               { on = true; src = r 5; taken = "head"; not_taken = "out"; id = 2 });
          block ~body:[ st 6 0 816 ] "out" Term.Halt
        ]
    ]

let stream n = Array.init n (fun i -> if i mod 3 = 0 then 1 else 0)

let candidate ~site =
  { Select.proc = "m"; block = "head"; site; bias = 0.66;
    predictability = 0.95; executed = 1000 }

let apply ?max_hoist prog =
  Transform.apply ?max_hoist ~candidates:[ candidate ~site:1 ] prog

let arch_digest ?predict_policy prog =
  Bv_exec.Interp.arch_digest
    (Bv_exec.Interp.run ?predict_policy (Layout.program prog))

let test_structure () =
  let prog = hammock_program ~n:24 (stream 24) in
  let result = apply prog in
  Alcotest.(check int) "no skips" 0 (List.length result.Transform.skipped);
  let tr = result.Transform.program in
  Validate.check_exn tr;
  let proc = Program.find_proc tr "m" in
  let a = Proc.find_block proc "head" in
  (match a.Block.term with
  | Term.Predict { id; _ } -> Alcotest.(check int) "predict id" 1 id
  | t -> Alcotest.failf "expected predict, got %s" (Format.asprintf "%a" Term.pp t));
  (* the condition slice left block A *)
  Alcotest.(check bool) "cmp sunk out of A" true
    (not
       (List.exists
          (function Instr.Cmp _ -> true | _ -> false)
          a.Block.body));
  (* two resolve blocks, two commit blocks, two correction blocks *)
  let labels = Proc.block_labels proc in
  List.iter
    (fun suffix ->
      Alcotest.(check bool) ("has " ^ suffix) true
        (List.exists
           (fun l ->
             String.length l > String.length suffix
             && String.sub l (String.length l - String.length suffix)
                  (String.length suffix)
                = suffix)
           labels))
    [ "rnt.1"; "rt.1"; "commitB.1"; "commitC.1"; "fixB.1"; "fixC.1" ];
  (* correction blocks are laid out cold (at the end) *)
  let last_two = List.filteri (fun i _ -> i >= List.length labels - 2) labels in
  List.iter
    (fun l -> Alcotest.(check bool) ("cold " ^ l) true
        (List.mem l last_two
         || not (String.length l >= 3 && String.sub l 0 3 = "fix")))
    labels;
  (* hoisted loads are speculative *)
  let rnt = Proc.find_block proc "head@rnt.1" in
  Alcotest.(check bool) "speculative loads in A'nt" true
    (List.exists
       (function Instr.Load { speculative = true; _ } -> true | _ -> false)
       rnt.Block.body);
  (* code grew *)
  Alcotest.(check bool) "piscs > 0" true
    (result.Transform.static_instrs_after > result.Transform.static_instrs_before)

let test_equivalence_under_policies () =
  let prog = hammock_program ~n:48 (stream 48) in
  let reference = arch_digest prog in
  let result = apply prog in
  let tr = result.Transform.program in
  let policies =
    [ ("always nt", fun ~pc:_ ~id:_ -> false);
      ("always t", fun ~pc:_ ~id:_ -> true);
      ("by pc parity", fun ~pc ~id:_ -> pc mod 2 = 0)
    ]
  in
  List.iter
    (fun (name, p) ->
      Alcotest.(check int) name reference (arch_digest ~predict_policy:p tr))
    policies;
  (* and the input program was not modified *)
  Alcotest.(check int) "input untouched" reference (arch_digest prog)

let test_liveness_renaming () =
  (* C redefines r10/r11 before reading them, so B's hoisted writes to
     r10/r11 are dead on the taken path and stay architectural; r6 (the
     accumulator) is read on both paths and must go through a temporary *)
  let c_body = [ ld 10 2 16; ld 11 2 24; add 6 6 10; st 6 0 808 ] in
  let prog = hammock_program ~c_body:(Some c_body) ~n:24 (stream 24) in
  let result = apply prog in
  let proc = Program.find_proc result.Transform.program "m" in
  let rnt = Proc.find_block proc "head@rnt.1" in
  let defs = List.concat_map Instr.defs rnt.Block.body in
  Alcotest.(check bool) "r10 kept architectural" true
    (List.exists (Reg.equal (r 10)) defs);
  Alcotest.(check bool) "r6 renamed to a temp" false
    (List.exists (Reg.equal (r 6)) defs);
  let commit = Proc.find_block proc "head@commitB.1" in
  Alcotest.(check bool) "commit moves restore r6" true
    (List.exists
       (function
         | Instr.Mov { dst; _ } -> Reg.equal dst (r 6)
         | _ -> false)
       commit.Block.body)

let test_max_hoist_cap () =
  let prog = hammock_program ~n:24 (stream 24) in
  let result = apply ~max_hoist:1 prog in
  let report = List.hd result.Transform.reports in
  Alcotest.(check int) "hoist capped nt" 1 report.Transform.hoisted_not_taken;
  Alcotest.(check int) "hoist capped t" 1 report.Transform.hoisted_taken;
  (* still correct *)
  Alcotest.(check int) "equivalent" (arch_digest prog)
    (arch_digest result.Transform.program)

let test_store_blocks_hoisting () =
  let b_body = [ st 6 0 800; ld 10 2 0; add 6 6 10 ] in
  let prog = hammock_program ~b_body:(Some b_body) ~n:24 (stream 24) in
  let result = apply prog in
  let report = List.hd result.Transform.reports in
  Alcotest.(check int) "store first => nothing hoisted" 0
    report.Transform.hoisted_not_taken

let test_skip_slice_hazards () =
  (* a non-slice instruction consuming the slice's value forbids sinking *)
  let extra_a = [ add 7 4 4 ] in
  let prog = hammock_program ~extra_a ~n:24 (stream 24) in
  let result = apply prog in
  Alcotest.(check int) "skipped" 1 (List.length result.Transform.skipped);
  Alcotest.(check bool) "reason mentions slice" true
    (match result.Transform.skipped with
    | [ (1, reason) ] ->
      String.length reason > 0
      && String.sub reason 0 9 = "non-slice"
    | _ -> false)

let test_temp_pool_clash_rejected () =
  let prog =
    hammock_program
      ~b_body:(Some [ movi 48 1 ])
      ~n:8 (stream 8)
  in
  (match Transform.apply ~candidates:[ candidate ~site:1 ] prog with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected temp-pool clash rejection")

let test_phi_metric () =
  let report =
    { Transform.site = 1; proc = "m"; slice_size = 2; slice_instrs = [];
      hoisted_not_taken = 3; hoisted_taken = 1; not_taken_block_size = 4;
      taken_block_size = 4 }
  in
  Alcotest.(check (float 0.01)) "phi" 50.0 (Transform.phi report)

let test_select_counters_and_pbc () =
  let prog = hammock_program ~n:64 (stream 64) in
  let image = Layout.program (Program.copy prog) in
  let predictor = Bv_bpred.Kind.create Bv_bpred.Kind.Tournament in
  let profile = Bv_profile.Profile.collect ~predictor image in
  let sel = Select.select ~min_executed:50 ~profile prog in
  Alcotest.(check (float 0.01)) "pbc = 100 (1 of 1 forward)" 100.0
    (Select.pbc sel);
  Alcotest.(check int) "nothing shape-rejected" 0 sel.Select.rejected_shape;
  (* huge threshold: rejected by the heuristic, counted as such *)
  let sel2 = Select.select ~min_executed:50 ~threshold:0.9 ~profile prog in
  Alcotest.(check int) "heuristic rejection counted" 1
    sel2.Select.rejected_heuristic;
  Alcotest.(check (float 0.01)) "pbc = 0" 0.0 (Select.pbc sel2)

let test_skip_redefine_hazard () =
  (* a remaining instruction in A that redefines a slice input *)
  let extra_a = [ movi 4 0 ] in
  (* redefines r4 after the slice load reads it *)
  let prog = hammock_program ~extra_a ~n:24 (stream 24) in
  let result = apply prog in
  Alcotest.(check int) "skipped" 1 (List.length result.Transform.skipped);
  (match result.Transform.skipped with
  | [ (1, reason) ] ->
    Alcotest.(check bool) "mentions redefinition" true
      (String.length reason >= 9)
  | _ -> Alcotest.fail "expected one skip")

let test_report_shapes () =
  let prog = hammock_program ~n:24 (stream 24) in
  let result = apply prog in
  let rep = List.hd result.Transform.reports in
  Alcotest.(check string) "proc" "m" rep.Transform.proc;
  Alcotest.(check int) "slice = ld+cmp (+shl)" 3 rep.Transform.slice_size;
  Alcotest.(check int) "slice instrs recorded" 3
    (List.length rep.Transform.slice_instrs);
  Alcotest.(check int) "B size recorded" 5 rep.Transform.not_taken_block_size;
  Alcotest.(check int) "C size recorded" 3 rep.Transform.taken_block_size

let test_selection_rules () =
  let prog = hammock_program ~n:64 (stream 64) in
  let image = Layout.program (Program.copy prog) in
  let predictor = Bv_bpred.Kind.create Bv_bpred.Kind.Tournament in
  let profile = Bv_profile.Profile.collect ~predictor image in
  let sel = Select.select ~min_executed:50 ~profile prog in
  (* site 1 is the forward hammock; site 2 is the backward latch *)
  Alcotest.(check int) "one forward branch" 1 sel.Select.static_forward_branches;
  Alcotest.(check (list int)) "site 1 selected" [ 1 ]
    (List.map (fun c -> c.Select.site) sel.Select.candidates);
  (* a huge threshold rejects everything *)
  let sel2 = Select.select ~min_executed:50 ~threshold:0.9 ~profile prog in
  Alcotest.(check int) "threshold filters" 0 (List.length sel2.Select.candidates);
  (* min_executed filters *)
  let sel3 = Select.select ~min_executed:1_000_000 ~profile prog in
  Alcotest.(check int) "min_executed filters" 0
    (List.length sel3.Select.candidates)

(* ---- the crown property: random hammock chains stay equivalent -------- *)

let gen_work_body =
  let open QCheck2.Gen in
  let instr =
    oneof
      [ map2 (fun d o -> ld d 2 (o * 8)) (int_range 10 14) (int_range 0 4);
        map2 (fun d a -> add d 6 a) (oneofl [ 6; 7 ]) (int_range 10 14);
        map2 (fun d v -> addi d d v) (int_range 6 7) (int_range 1 9);
        map (fun o -> st 6 0 (800 + (o * 8))) (int_range 0 4)
      ]
  in
  list_size (int_range 1 8) instr

let gen_case =
  QCheck2.Gen.(
    triple gen_work_body gen_work_body
      (pair (int_range 2 40) (int_range 0 1000)))

let prop_random_hammocks_equivalent =
  QCheck2.Test.make ~name:"transform preserves semantics (random hammocks)"
    ~count:150 gen_case
    (fun (b_body, c_body, (n, seed)) ->
      let s =
        Array.init n (fun i -> if (i * 7) + seed mod 5 < 2 then 1 else 0)
      in
      let prog =
        hammock_program ~b_body:(Some b_body) ~c_body:(Some c_body) ~n s
      in
      let reference = arch_digest prog in
      match Transform.apply ~candidates:[ candidate ~site:1 ] prog with
      | result ->
        let tr = result.Transform.program in
        arch_digest ~predict_policy:(fun ~pc:_ ~id:_ -> false) tr = reference
        && arch_digest ~predict_policy:(fun ~pc:_ ~id:_ -> true) tr
           = reference
        && arch_digest ~predict_policy:(fun ~pc ~id:_ -> pc mod 3 = 0) tr
           = reference
      | exception Invalid_argument _ -> false)

let () =
  Alcotest.run "vanguard"
    [ ( "structure",
        [ Alcotest.test_case "decomposition shape" `Quick test_structure;
          Alcotest.test_case "liveness renaming" `Quick test_liveness_renaming;
          Alcotest.test_case "max hoist" `Quick test_max_hoist_cap;
          Alcotest.test_case "store blocks hoist" `Quick
            test_store_blocks_hoisting
        ] );
      ( "safety",
        [ Alcotest.test_case "slice hazards skip" `Quick test_skip_slice_hazards;
          Alcotest.test_case "temp pool clash" `Quick
            test_temp_pool_clash_rejected
        ] );
      ( "equivalence",
        [ Alcotest.test_case "policies" `Quick test_equivalence_under_policies ] );
      ( "selection",
        [ Alcotest.test_case "rules" `Quick test_selection_rules;
          Alcotest.test_case "counters/pbc" `Quick test_select_counters_and_pbc;
          Alcotest.test_case "phi" `Quick test_phi_metric
        ] );
      ( "reports",
        [ Alcotest.test_case "redefine hazard" `Quick test_skip_redefine_hazard;
          Alcotest.test_case "shapes" `Quick test_report_shapes
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_random_hammocks_equivalent ] )
    ]
