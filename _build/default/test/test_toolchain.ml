(* Assembler, dominators and DOT export. *)

open Bv_isa
open Bv_ir

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i =
    if i + nl > hl then false
    else String.equal (String.sub haystack i nl) needle || go (i + 1)
  in
  go 0

(* ------------------------------------------------------------ assembler *)

let kernel_text =
  {|
; a predictable 60/40 hammock over a condition stream
.memory 64
.data 0 1 0 1 1 0 1 0 1
.main main

proc main
entry:
  mov   r1, #0
  mov   r6, #0
head:
  shl   r2, r1, #3
  ld    r4, [r2 + 0]
  cmp.ne r5, r4, #0
  bnz   r5, then        ; site 1
else:
  add   r6, r6, #1
  jmp   latch
then:
  add   r6, r6, #2
latch:
  add   r1, r1, #1
  cmp.lt r5, r1, #8
  bnz   r5, head        ; site 2
out:
  st    r6, [r2 + 256]
  halt
|}

let test_asm_kernel () =
  let prog = Asm.program kernel_text in
  let image = Layout.program prog in
  let st = Bv_exec.Interp.run image in
  (* stream 1 0 1 1 0 1 0 1: five takens (+2), three not (+1) = 13 *)
  Alcotest.(check int) "result" 13 st.Bv_exec.Interp.mem.((56 + 256) / 8);
  Alcotest.(check bool) "halts" true st.Bv_exec.Interp.halted

let test_asm_single_instructions () =
  let i = Alcotest.testable Instr.pp ( = ) in
  let r = Reg.make in
  Alcotest.check i "mov imm" (Instr.Mov { dst = r 3; src = Instr.Imm (-7) })
    (Asm.instruction "  mov r3, #-7");
  Alcotest.check i "spec load"
    (Instr.Load { dst = r 4; base = r 2; offset = 16; speculative = true })
    (Asm.instruction "ld+ r4, [r2 + 16]");
  Alcotest.check i "store"
    (Instr.Store { src = r 6; base = r 0; offset = 8 })
    (Asm.instruction "st r6, [r0 + 8]");
  Alcotest.check i "fpu"
    (Instr.Fpu { op = Instr.Mul; dst = r 7; src1 = r 7; src2 = Instr.Imm 3 })
    (Asm.instruction "fmul r7, r7, #3");
  Alcotest.check i "cmov"
    (Instr.Cmov { on = false; cond = r 5; dst = r 6; src = Instr.Reg (r 7) })
    (Asm.instruction "cmov.z r5, r6, r7");
  Alcotest.check i "resolve"
    (Instr.Resolve
       { on = true; src = r 5; target = "fix"; predicted_taken = false; id = 9 })
    (Asm.instruction "resolve.nz.pnt r5, fix ; site 9");
  Alcotest.check i "branch site"
    (Instr.Branch { on = false; src = r 1; target = "x"; id = 42 })
    (Asm.instruction "bz r1, x ; site 42")

let test_asm_errors () =
  let expect_error text =
    match Asm.program text with
    | exception Asm.Parse_error _ -> ()
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "accepted %S" text
  in
  expect_error "proc m\nb:\n  mov r99, #0\n  halt\n";
  expect_error "proc m\nb:\n  frobnicate r1, r2, r3\n  halt\n";
  expect_error "  mov r1, #0\n";
  (* instruction before any label *)
  expect_error "proc m\nb:\n  mov r1, #0\n";
  (* falls through past the end *)
  expect_error "proc m\nb:\n  jmp nowhere\n"

let test_asm_disasm_roundtrip () =
  (* assemble, lay out, recover, re-lay out: the instruction streams agree *)
  let img = Layout.program (Asm.program kernel_text) in
  let img2 = Layout.program (Recover.image img) in
  Alcotest.(check int) "lengths" (Array.length img.Layout.code)
    (Array.length img2.Layout.code);
  Alcotest.(check int) "digests"
    (Bv_exec.Interp.arch_digest (Bv_exec.Interp.run img))
    (Bv_exec.Interp.arch_digest (Bv_exec.Interp.run img2))

(* ----------------------------------------------------------- dominators *)

let diamond () =
  Asm.program
    {|
proc m
a:
  mov r1, #1
  cmp.ne r5, r1, #0
  bnz r5, c
b:
  mov r2, #1
  jmp d
c:
  mov r2, #2
d:
  halt
|}

let test_dominators_diamond () =
  let p = Program.find_proc (diamond ()) "m" in
  let t = Dominators.compute p in
  Alcotest.(check bool) "a dom d" true (Dominators.dominates t "a" "d");
  Alcotest.(check bool) "b !dom d" false (Dominators.dominates t "b" "d");
  Alcotest.(check bool) "reflexive" true (Dominators.dominates t "c" "c");
  Alcotest.(check (option string)) "idom d" (Some "a") (Dominators.idom t "d");
  Alcotest.(check (option string)) "idom entry" None (Dominators.idom t "a");
  let tree = Dominators.dominator_tree t in
  Alcotest.(check (list (pair string (list string))))
    "tree"
    [ ("a", [ "b"; "c"; "d" ]); ("b", []); ("c", []); ("d", []) ]
    tree

let test_dominators_after_transform () =
  (* structural invariant: the predict block dominates both resolution
     blocks, and each resolution block dominates its commit block *)
  let prog =
    Asm.program
      {|
.memory 64
.data 0 1 0 0 1 1 0 1 0
proc m
e:
  mov r1, #0
  mov r6, #0
head:
  shl r2, r1, #3
  ld r4, [r2 + 0]
  cmp.ne r5, r4, #0
  bnz r5, c ; site 1
b:
  ld r10, [r2 + 8]
  add r6, r6, r10
  jmp latch
c:
  add r6, r6, #2
latch:
  add r1, r1, #1
  cmp.lt r5, r1, #8
  bnz r5, head ; site 2
out:
  halt
|}
  in
  let cand =
    { Vanguard.Select.proc = "m"; block = "head"; site = 1; bias = 0.6;
      predictability = 0.9; executed = 8 }
  in
  let result = Vanguard.Transform.apply ~candidates:[ cand ] prog in
  let p = Program.find_proc result.Vanguard.Transform.program "m" in
  let t = Dominators.compute p in
  Alcotest.(check bool) "predict dominates A'nt" true
    (Dominators.dominates t "head" "head@rnt.1");
  Alcotest.(check bool) "predict dominates A't" true
    (Dominators.dominates t "head" "head@rt.1");
  Alcotest.(check bool) "A'nt dominates its commit" true
    (Dominators.dominates t "head@rnt.1" "head@commitB.1");
  Alcotest.(check bool) "A'nt dominates its correction" true
    (Dominators.dominates t "head@rnt.1" "head@fixC.1");
  Alcotest.(check bool) "A't does not dominate B's commit" false
    (Dominators.dominates t "head@rt.1" "head@commitB.1")

let test_dominators_unreachable () =
  let prog =
    Asm.program
      "proc m\na:\n  jmp c\ndead:\n  jmp c\nc:\n  halt\n"
  in
  let p = Program.find_proc prog "m" in
  let t = Dominators.compute p in
  Alcotest.(check bool) "unreachable not dominated" false
    (Dominators.dominates t "a" "dead");
  Alcotest.(check bool) "unreachable self" true
    (Dominators.dominates t "dead" "dead");
  Alcotest.(check (option string)) "no idom" None (Dominators.idom t "dead")

(* ------------------------------------------------------------------ dot *)

let test_dot_output () =
  let prog = diamond () in
  let s = Format.asprintf "%a" (Dot.program ~bodies:true) prog in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("has " ^ frag) true (contains s frag))
    [ "digraph"; "cluster_0"; "m::a"; "taken"; "fall"; "mov r2, #1" ];
  let p = Program.find_proc prog "m" in
  let s2 = Format.asprintf "%a" (Dot.proc ~bodies:false) p in
  Alcotest.(check bool) "compact has no instrs" false (contains s2 "mov r2");
  (* call edges *)
  let prog2 =
    Asm.program
      "proc m\ne:\n  call f\nafter:\n  halt\nproc f\nf0:\n  ret\n"
  in
  let s3 = Format.asprintf "%a" (Dot.program ~bodies:false) prog2 in
  Alcotest.(check bool) "call edge" true (contains s3 "style=dashed")

let () =
  Alcotest.run "toolchain"
    [ ( "asm",
        [ Alcotest.test_case "kernel" `Quick test_asm_kernel;
          Alcotest.test_case "instructions" `Quick test_asm_single_instructions;
          Alcotest.test_case "errors" `Quick test_asm_errors;
          Alcotest.test_case "asm/recover roundtrip" `Quick
            test_asm_disasm_roundtrip
        ] );
      ( "dominators",
        [ Alcotest.test_case "diamond" `Quick test_dominators_diamond;
          Alcotest.test_case "transform invariants" `Quick
            test_dominators_after_transform;
          Alcotest.test_case "unreachable" `Quick test_dominators_unreachable
        ] );
      ( "dot", [ Alcotest.test_case "output" `Quick test_dot_output ] )
    ]
