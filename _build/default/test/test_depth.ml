(* Deeper corner-case coverage: structural-hazard limits and penalty knobs
   in the timing model, predictor capacity/aliasing effects, and the
   calibration invariants the workload generator must uphold. *)

open Bv_isa
open Bv_ir
open Bv_pipeline

let r = Reg.make
let movi d v = Instr.Mov { dst = r d; src = Instr.Imm v }
let addi d a v = Instr.Alu { op = Instr.Add; dst = r d; src1 = r a; src2 = Instr.Imm v }
let ld d b o = Instr.Load { dst = r d; base = r b; offset = o; speculative = false }
let st s b o = Instr.Store { src = r s; base = r b; offset = o }
let block ?(body = []) label term = Block.make ~label ~body ~term

let image ?segments ?mem_words procs =
  Layout.program (Program.make ?segments ?mem_words ~main:"m" procs)

let interp_digest img = Bv_exec.Interp.arch_digest (Bv_exec.Interp.run img)

(* a loop of [body] over n iterations *)
let loop_image ?segments ?mem_words ~n body =
  image ?segments ?mem_words
    [ Proc.make ~name:"m"
        [ block ~body:[ movi 1 0 ] "e" (Term.Jump "loop");
          block ~body "loop" (Term.Jump "latch");
          block
            ~body:
              [ addi 1 1 1;
                Instr.Cmp { op = Instr.Lt; dst = r 5; src1 = r 1;
                            src2 = Instr.Imm n }
              ]
            "latch"
            (Term.Branch
               { on = true; src = r 5; taken = "loop"; not_taken = "out";
                 id = 1 });
          block "out" Term.Halt
        ]
    ]

(* ------------------------------------------------- structural hazards *)

let test_store_buffer_saturation () =
  let body = List.init 8 (fun k -> st 1 0 (8 * k)) in
  let img = loop_image ~mem_words:16 ~n:100 body in
  let want = interp_digest img in
  let tiny = { Config.four_wide with Config.store_buffer = 1 } in
  let res_tiny = Machine.run ~config:tiny img in
  let res_big = Machine.run ~config:Config.four_wide img in
  Alcotest.(check int) "digest tiny" want res_tiny.Machine.arch_digest;
  Alcotest.(check bool) "structural stalls appear" true
    (res_tiny.Machine.stats.Stats.mem_struct_stall_cycles
    > res_big.Machine.stats.Stats.mem_struct_stall_cycles);
  Alcotest.(check bool) "and cost cycles" true
    (res_tiny.Machine.stats.Stats.cycles > res_big.Machine.stats.Stats.cycles)

let test_mshr_limit () =
  (* strided misses: each load touches a new line over a 1 MB span *)
  let body =
    List.init 6 (fun k ->
        [ Instr.Alu { op = Instr.Shl; dst = r 2; src1 = r 1; src2 = Instr.Imm 9 };
          ld (10 + k) 2 (k * 65536)
        ])
    |> List.concat
  in
  let img = loop_image ~mem_words:(1 lsl 17) ~n:200 body in
  let want = interp_digest img in
  let one = { Config.four_wide with Config.mshrs = 1 } in
  let res_one = Machine.run ~config:one img in
  let res_many = Machine.run ~config:Config.four_wide img in
  Alcotest.(check int) "digest" want res_one.Machine.arch_digest;
  Alcotest.(check bool) "serialised misses cost cycles" true
    (res_one.Machine.stats.Stats.cycles > res_many.Machine.stats.Stats.cycles)

let test_fetch_buffer_size () =
  let body = List.init 12 (fun k -> movi (10 + (k mod 8)) k) in
  let img = loop_image ~n:300 body in
  let tiny = { Config.four_wide with Config.fetch_buffer = 4 } in
  let res_tiny = Machine.run ~config:tiny img in
  let res_big = Machine.run ~config:Config.four_wide img in
  Alcotest.(check int) "digest agrees" res_big.Machine.arch_digest
    res_tiny.Machine.arch_digest;
  Alcotest.(check bool) "small buffer no faster" true
    (res_tiny.Machine.stats.Stats.cycles
    >= res_big.Machine.stats.Stats.cycles)

(* -------------------------------------------------------- penalty knobs *)

let test_taken_bubble_cost () =
  (* a tight loop is dominated by taken-branch bubbles *)
  let img = loop_image ~n:2000 [ movi 2 1 ] in
  let cheap = { Config.four_wide with Config.taken_bubble = 0 } in
  let costly = { Config.four_wide with Config.taken_bubble = 4 } in
  let a = (Machine.run ~config:cheap img).Machine.stats.Stats.cycles in
  let b = (Machine.run ~config:costly img).Machine.stats.Stats.cycles in
  Alcotest.(check bool) (Printf.sprintf "bubbles cost (%d < %d)" a b) true
    (a + 2000 <= b)

let test_front_depth_raises_mispredict_cost () =
  let n = 2000 in
  let rng = Bv_workloads.Rng.create ~seed:3 in
  let stream = Array.init n (fun _ -> Bv_workloads.Rng.below rng 2) in
  let body =
    [ Instr.Alu { op = Instr.Shl; dst = r 2; src1 = r 1; src2 = Instr.Imm 3 };
      ld 4 2 0;
      Instr.Cmp { op = Instr.Ne; dst = r 6; src1 = r 4; src2 = Instr.Imm 0 }
    ]
  in
  let img =
    image ~mem_words:(n + 8)
      ~segments:[ { Program.base = 0; contents = stream } ]
      [ Proc.make ~name:"m"
          [ block ~body:[ movi 1 0 ] "e" (Term.Jump "loop");
            block ~body "loop"
              (Term.Branch
                 { on = true; src = r 6; taken = "t"; not_taken = "nt"; id = 7 });
            block ~body:[ addi 3 3 1 ] "nt" (Term.Jump "latch");
            block ~body:[ addi 3 3 2 ] "t" (Term.Jump "latch");
            block
              ~body:
                [ addi 1 1 1;
                  Instr.Cmp { op = Instr.Lt; dst = r 5; src1 = r 1;
                              src2 = Instr.Imm n }
                ]
              "latch"
              (Term.Branch
                 { on = true; src = r 5; taken = "loop"; not_taken = "out";
                   id = 8 });
            block "out" Term.Halt
          ]
      ]
  in
  let shallow = { Config.four_wide with Config.front_stages = 3 } in
  let deep = { Config.four_wide with Config.front_stages = 12 } in
  let a = Machine.run ~config:shallow img in
  let b = Machine.run ~config:deep img in
  Alcotest.(check bool) "same mispredict counts (roughly)" true
    (abs
       (a.Machine.stats.Stats.branch_mispredicts
       - b.Machine.stats.Stats.branch_mispredicts)
    < n / 10);
  Alcotest.(check bool) "deep pipe pays more" true
    (b.Machine.stats.Stats.cycles
    > a.Machine.stats.Stats.cycles
      + (2 * a.Machine.stats.Stats.branch_mispredicts))

let test_memory_latency_knob () =
  let cache_fast =
    { Bv_cache.Hierarchy.default_config with Bv_cache.Hierarchy.mem_latency = 20 }
  in
  let cache_slow =
    { Bv_cache.Hierarchy.default_config with Bv_cache.Hierarchy.mem_latency = 400 }
  in
  (* random misses over 8 MB *)
  let body =
    [ Instr.Alu { op = Instr.Mul; dst = r 9; src1 = r 9; src2 = Instr.Imm 2862933555777941757 };
      Instr.Alu { op = Instr.Add; dst = r 9; src1 = r 9; src2 = Instr.Imm 3037000493 };
      Instr.Alu { op = Instr.Shr; dst = r 2; src1 = r 9; src2 = Instr.Imm 20 };
      Instr.Alu { op = Instr.And; dst = r 2; src1 = r 2; src2 = Instr.Imm ((1 lsl 20) - 1) };
      Instr.Alu { op = Instr.Shl; dst = r 2; src1 = r 2; src2 = Instr.Imm 3 };
      ld 4 2 0;
      (* feed the loaded value back into the pointer chain so each miss
         serialises with the next (a true pointer chase) *)
      Instr.Alu { op = Instr.Add; dst = r 9; src1 = r 9; src2 = Instr.Reg (r 4) }
    ]
  in
  let img = loop_image ~mem_words:(1 lsl 20) ~n:300 body in
  let fast =
    Machine.run ~config:(Config.make ~cache:cache_fast ~width:4 ()) img
  in
  let slow =
    Machine.run ~config:(Config.make ~cache:cache_slow ~width:4 ()) img
  in
  Alcotest.(check bool) "memory latency dominates" true
    (slow.Machine.stats.Stats.cycles > fast.Machine.stats.Stats.cycles * 2)

let test_runahead_prefetch () =
  (* strided misses over 16 MB with a serial compute chain: prefetching
     under the stall must keep semantics and save cycles *)
  let body =
    [ Instr.Alu { op = Instr.Shl; dst = r 2; src1 = r 1; src2 = Instr.Imm 10 };
      ld 4 2 0;
      Instr.Alu { op = Instr.Add; dst = r 7; src1 = r 7; src2 = Instr.Reg (r 4) };
      Instr.Alu { op = Instr.Mul; dst = r 7; src1 = r 7; src2 = Instr.Imm 3 }
    ]
  in
  let img = loop_image ~mem_words:(1 lsl 21) ~n:400 body in
  let want = interp_digest img in
  let off = Machine.run ~config:Config.four_wide img in
  let on_cfg = { Config.four_wide with Config.runahead = true } in
  let on_res = Machine.run ~config:on_cfg img in
  Alcotest.(check int) "digest off" want off.Machine.arch_digest;
  Alcotest.(check int) "digest on" want on_res.Machine.arch_digest;
  Alcotest.(check bool) "prefetches happened" true
    (on_res.Machine.stats.Stats.runahead_prefetches > 100);
  Alcotest.(check bool)
    (Printf.sprintf "faster with runahead (%d < %d)"
       on_res.Machine.stats.Stats.cycles off.Machine.stats.Stats.cycles)
    true
    (on_res.Machine.stats.Stats.cycles < off.Machine.stats.Stats.cycles);
  Alcotest.(check int) "no prefetches when off" 0
    off.Machine.stats.Stats.runahead_prefetches

(* ------------------------------------------------------------ predictors *)

let drive (p : Bv_bpred.Predictor.t) streams =
  let n = Array.length streams.(0) in
  let correct = Array.make (Array.length streams) 0 in
  for i = 0 to n - 1 do
    Array.iteri
      (fun s stream ->
        let taken = stream.(i) in
        let pc = 0x80 + (s * 4) in
        let pred, meta = p.Bv_bpred.Predictor.predict ~pc ~outcome:taken in
        if pred = taken then correct.(s) <- correct.(s) + 1
        else p.Bv_bpred.Predictor.recover meta ~taken;
        p.Bv_bpred.Predictor.update meta ~pc ~taken)
      streams
  done;
  Array.map (fun c -> Float.of_int c /. Float.of_int n) correct

let test_gshare_capacity_aliasing () =
  (* many sites with conflicting histories: a tiny table aliases *)
  let mk () =
    Array.init 12 (fun s ->
        Array.init 8000 (fun i -> (i + s) mod (3 + (s mod 3)) = 0))
  in
  let small =
    drive (Bv_bpred.Gshare.create ~table_bits:5 ~history_bits:5 ()) (mk ())
  in
  let big = drive (Bv_bpred.Gshare.create ()) (mk ()) in
  let avg a = Array.fold_left ( +. ) 0.0 a /. Float.of_int (Array.length a) in
  Alcotest.(check bool)
    (Printf.sprintf "capacity matters (%.3f < %.3f)" (avg small) (avg big))
    true
    (avg small +. 0.05 < avg big)

let test_tournament_mixed_population () =
  (* biased + patterned sites together: the chooser serves both *)
  let rngs = Bv_workloads.Rng.create ~seed:4 in
  let streams =
    Array.init 8 (fun s ->
        if s < 4 then
          Array.init 8000 (fun _ -> Bv_workloads.Rng.bernoulli rngs 0.95)
        else Array.init 8000 (fun i -> i mod 4 < 2))
  in
  let acc = drive (Bv_bpred.Tournament.create ()) streams in
  Array.iteri
    (fun s a ->
      Alcotest.(check bool)
        (Printf.sprintf "site %d accuracy %.3f" s a)
        true
        (if s < 4 then a > 0.85 else a > 0.9))
    acc

let test_tage_phase_change () =
  (* the pattern flips mid-stream; tage re-learns *)
  let stream =
    Array.init 30000 (fun i ->
        if i < 15000 then i mod 5 < 2 else i mod 5 >= 2)
  in
  let p = Bv_bpred.Tage.create () in
  let late_correct = ref 0 in
  Array.iteri
    (fun i taken ->
      let pred, meta = p.Bv_bpred.Predictor.predict ~pc:0x44 ~outcome:taken in
      if pred = taken then begin
        if i > 25000 then incr late_correct end
      else p.Bv_bpred.Predictor.recover meta ~taken;
      p.Bv_bpred.Predictor.update meta ~pc:0x44 ~taken)
    stream;
  let late = Float.of_int !late_correct /. 5000.0 in
  Alcotest.(check bool) (Printf.sprintf "re-learned (%.3f)" late) true
    (late > 0.9)

(* --------------------------------------------------- workload invariants *)

let calib_spec =
  Bv_workloads.Spec.make ~name:"calib" ~suite:Bv_workloads.Spec.Int_2006
    ~seed:31
    ~branch_classes:
      [ Bv_workloads.Spec.cls ~count:6 ~taken_rate:0.6 ~predictability:0.96 ();
        Bv_workloads.Spec.cls ~iid:true ~count:6 ~taken_rate:0.93
          ~predictability:0.93 ()
      ]
    ~inner_n:128 ~reps:6 ()

let calib_profile =
  lazy
    (let img =
       Layout.program (Bv_workloads.Gen.generate ~input:0 calib_spec)
     in
     Bv_profile.Profile.collect
       ~predictor:(Bv_bpred.Kind.create Bv_bpred.Kind.Tournament)
       img)

let hammock_sites profile =
  List.filter
    (fun s -> s.Bv_profile.Profile.id < 900_000)
    (Bv_profile.Profile.sites_by_execution profile)

let test_calibration_selection_invariant () =
  (* the selection invariant behind every experiment: eligible sites carry
     a margin >= 5pp, biased sites do not *)
  let profile = Lazy.force calib_profile in
  let sites = hammock_sites profile in
  Alcotest.(check int) "12 hammocks" 12 (List.length sites);
  let eligible, biased =
    List.partition (fun s -> Bv_profile.Profile.bias s < 0.8) sites
  in
  Alcotest.(check int) "6 unbiased" 6 (List.length eligible);
  List.iter
    (fun s ->
      let margin =
        Bv_profile.Profile.predictability s -. Bv_profile.Profile.bias s
      in
      Alcotest.(check bool)
        (Printf.sprintf "eligible margin %.3f" margin)
        true (margin >= 0.05))
    eligible;
  List.iter
    (fun s ->
      let margin =
        Bv_profile.Profile.predictability s -. Bv_profile.Profile.bias s
      in
      Alcotest.(check bool)
        (Printf.sprintf "biased margin %.3f" margin)
        true (margin < 0.05))
    biased

let test_calibration_bias_targets () =
  let profile = Lazy.force calib_profile in
  List.iter
    (fun s ->
      let b = Bv_profile.Profile.bias s in
      Alcotest.(check bool) (Printf.sprintf "bias %.3f plausible" b) true
        ((b > 0.5 && b < 0.72) || (b > 0.85 && b < 0.99)))
    (hammock_sites profile)

let test_cold_sites_execute_less () =
  let profile = Lazy.force calib_profile in
  let sites = hammock_sites profile in
  let eligible, biased =
    List.partition (fun s -> Bv_profile.Profile.bias s < 0.8) sites
  in
  let execs l =
    List.fold_left (fun a s -> a + s.Bv_profile.Profile.executed) 0 l
    / List.length l
  in
  Alcotest.(check bool) "hot sites run more" true
    (execs eligible >= 2 * execs biased)

let test_cond_chase_raises_aspcb () =
  let mk chase =
    let spec =
      Bv_workloads.Spec.make
        ~name:(if chase then "chase" else "nochase")
        ~suite:Bv_workloads.Spec.Int_2006 ~seed:33
        ~branch_classes:
          [ Bv_workloads.Spec.cls ~count:4 ~taken_rate:0.6
              ~predictability:0.95 ()
          ]
        ~footprint_kb:1024 ~chase_frac:0.2 ~cond_chase:chase ~inner_n:64
        ~reps:4 ()
    in
    let b = Bv_harness.Runner.prepare spec in
    let base = (Bv_harness.Runner.simulate b ~input:1 ~width:4).Bv_harness.Runner.base in
    Bv_harness.Metrics.aspcb b ~base
  in
  let with_chase = mk true and without = mk false in
  Alcotest.(check bool)
    (Printf.sprintf "aspcb %.1f > %.1f" with_chase without)
    true
    (with_chase > without +. 5.0)

let test_fp_mix_generates_fpu () =
  let spec =
    Bv_workloads.Spec.make ~name:"fpmix" ~suite:Bv_workloads.Spec.Fp_2006
      ~seed:34
      ~branch_classes:
        [ Bv_workloads.Spec.cls ~count:4 ~taken_rate:0.6 ~predictability:0.95
            ()
        ]
      ~fp_mix:0.9 ~inner_n:32 ~reps:2 ()
  in
  let img = Layout.program (Bv_workloads.Gen.generate spec) in
  let fpu =
    Array.fold_left
      (fun n i -> match i with Instr.Fpu _ -> n + 1 | _ -> n)
      0 img.Layout.code
  in
  let alu =
    Array.fold_left
      (fun n i -> match i with Instr.Alu _ -> n + 1 | _ -> n)
      0 img.Layout.code
  in
  Alcotest.(check bool)
    (Printf.sprintf "fp-heavy mix (%d fpu vs %d alu)" fpu alu)
    true (fpu > alu / 4)

let test_scale_env_changes_reps () =
  Alcotest.(check (float 0.0001)) "default scale" 1.0
    (Bv_harness.Runner.scale ())

let () =
  Alcotest.run "depth"
    [ ( "structural hazards",
        [ Alcotest.test_case "store buffer" `Quick test_store_buffer_saturation;
          Alcotest.test_case "mshr" `Quick test_mshr_limit;
          Alcotest.test_case "fetch buffer" `Quick test_fetch_buffer_size
        ] );
      ( "penalties",
        [ Alcotest.test_case "taken bubble" `Quick test_taken_bubble_cost;
          Alcotest.test_case "front depth" `Quick
            test_front_depth_raises_mispredict_cost;
          Alcotest.test_case "memory latency" `Quick test_memory_latency_knob;
          Alcotest.test_case "runahead prefetch" `Quick test_runahead_prefetch
        ] );
      ( "predictors",
        [ Alcotest.test_case "gshare aliasing" `Slow
            test_gshare_capacity_aliasing;
          Alcotest.test_case "tournament mix" `Slow
            test_tournament_mixed_population;
          Alcotest.test_case "tage phase change" `Slow test_tage_phase_change
        ] );
      ( "workload calibration",
        [ Alcotest.test_case "selection invariant" `Slow
            test_calibration_selection_invariant;
          Alcotest.test_case "bias targets" `Slow test_calibration_bias_targets;
          Alcotest.test_case "hot/cold split" `Slow
            test_cold_sites_execute_less;
          Alcotest.test_case "cond-chase ASPCB" `Slow
            test_cond_chase_raises_aspcb;
          Alcotest.test_case "fp mix" `Quick test_fp_mix_generates_fpu;
          Alcotest.test_case "scale default" `Quick test_scale_env_changes_reps
        ] )
    ]
