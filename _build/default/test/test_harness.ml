open Bv_harness
open Bv_workloads

let tiny_spec =
  Spec.make ~name:"tiny-harness" ~suite:Spec.Int_2006 ~seed:21
    ~branch_classes:
      [ Spec.cls ~count:3 ~taken_rate:0.6 ~predictability:0.95 ();
        Spec.cls ~iid:true ~count:2 ~taken_rate:0.93 ~predictability:0.93 ()
      ]
    ~inner_n:64 ~reps:3 ()

let bench = lazy (Runner.prepare tiny_spec)

let test_geomean () =
  Alcotest.(check (float 0.0001)) "empty" 1.0 (Agg.geomean []);
  Alcotest.(check (float 0.0001)) "pair" 2.0 (Agg.geomean [ 1.0; 4.0 ]);
  Alcotest.(check (float 0.01)) "speedup pct" 10.0
    (Agg.geomean_speedup_pct [ 10.0; 10.0 ]);
  Alcotest.(check (float 0.0001)) "mean" 2.0 (Agg.mean [ 1.0; 3.0 ]);
  Alcotest.(check (float 0.0001)) "max_or default" 5.0 (Agg.max_or 5.0 []);
  Alcotest.(check (float 0.0001)) "max_or" 3.0 (Agg.max_or 0.0 [ 1.0; 3.0 ])

let test_text_render () =
  let t = Text.render ~headers:[ "name"; "value" ] [ [ "a"; "1.5" ]; [ "bb"; "10.25" ] ] in
  let lines = String.split_on_char '\n' t in
  Alcotest.(check int) "rows" 4 (List.length lines);
  (* all lines equal width *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths);
  Alcotest.(check string) "bar" "###" (Text.bar 3.2 ~width:10 ~scale:1.0);
  Alcotest.(check string) "bar capped" "#####" (Text.bar 99.0 ~width:5 ~scale:1.0);
  Alcotest.(check string) "f1" "1.2" (Text.f1 1.25)

let test_csv () =
  let out = Text.csv ~headers:[ "a"; "b" ] [ [ "1,5"; "x\"y" ]; [ "2"; "z" ] ] in
  Alcotest.(check string) "escaped"
    "a,b\n\"1,5\",\"x\"\"y\"\n2,z" out

let test_prepare_and_metrics () =
  let b = Lazy.force bench in
  Alcotest.(check bool) "selected something" true
    ((Runner.selection b).Vanguard.Select.candidates <> []);
  Alcotest.(check bool) "piscs positive" true (Runner.piscs b > 0.0);
  Alcotest.(check bool) "static grew" true
    (Runner.experimental_static b > Runner.baseline_static b);
  let row = Metrics.table2_row b in
  Alcotest.(check bool) "pbc in range" true
    (row.Metrics.pbc > 0.0 && row.Metrics.pbc <= 100.0);
  Alcotest.(check bool) "phi in range" true
    (row.Metrics.phi >= 0.0 && row.Metrics.phi <= 100.0);
  Alcotest.(check bool) "alpbb positive" true (row.Metrics.alpbb > 0.0);
  Alcotest.(check bool) "aspcb at least a load+cmp" true
    (row.Metrics.aspcb >= 4.0)

let test_simulate_cross_checked () =
  let b = Lazy.force bench in
  let pair = Runner.simulate b ~input:1 ~width:4 in
  Alcotest.(check bool) "both finished" true
    (pair.Runner.base.Bv_pipeline.Machine.finished
    && pair.Runner.exp.Bv_pipeline.Machine.finished);
  (* memoisation returns the same physical result *)
  let pair2 = Runner.simulate b ~input:1 ~width:4 in
  Alcotest.(check bool) "memoised" true (pair == pair2)

let test_best_ge_avg () =
  let b = Lazy.force bench in
  Alcotest.(check bool) "best >= avg" true
    (Runner.best_speedup b ~width:4 >= Runner.avg_speedup b ~width:4 -. 1e-9)

let test_alpbb_known () =
  let open Bv_ir in
  let open Bv_isa in
  let r = Reg.make in
  let ld d = Instr.Load { dst = r d; base = r 0; offset = 0; speculative = false } in
  let prog =
    Program.make ~main:"m" ~mem_words:2
      [ Proc.make ~name:"m"
          [ Block.make ~label:"a" ~body:[ ld 1; ld 2 ] ~term:(Term.Jump "b");
            Block.make ~label:"b" ~body:[ ld 3 ] ~term:Term.Halt
          ]
      ]
  in
  Alcotest.(check (float 0.001)) "alpbb" 1.5 (Metrics.alpbb prog)

let test_experiments_registry () =
  Alcotest.(check int) "18 experiments" 18 (List.length Experiments.all);
  Alcotest.(check bool) "find fig8" true (Experiments.find "fig8" <> None);
  Alcotest.(check bool) "find nothing" true (Experiments.find "zzz" = None);
  (* table1 is cheap: render it *)
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  (match Experiments.find "table1" with
  | Some f ->
    f ppf;
    Format.pp_print_flush ppf ()
  | None -> Alcotest.fail "table1 missing");
  Alcotest.(check bool) "mentions widths" true
    (Buffer.length buf > 200)

let prop_geomean_between_min_max =
  QCheck2.Test.make ~name:"geomean between min and max" ~count:200
    QCheck2.Gen.(list_size (int_range 1 10) (float_range 0.1 10.0))
    (fun xs ->
      let g = Agg.geomean xs in
      let mn = List.fold_left Float.min infinity xs in
      let mx = List.fold_left Float.max neg_infinity xs in
      g >= mn -. 1e-9 && g <= mx +. 1e-9)

let () =
  Alcotest.run "bv_harness"
    [ ( "agg",
        [ Alcotest.test_case "geomean" `Quick test_geomean;
          QCheck_alcotest.to_alcotest prop_geomean_between_min_max
        ] );
      ( "text",
        [ Alcotest.test_case "render" `Quick test_text_render;
          Alcotest.test_case "csv" `Quick test_csv
        ] );
      ( "runner",
        [ Alcotest.test_case "prepare/metrics" `Slow test_prepare_and_metrics;
          Alcotest.test_case "simulate + memo" `Slow
            test_simulate_cross_checked;
          Alcotest.test_case "best >= avg" `Slow test_best_ge_avg
        ] );
      ( "metrics", [ Alcotest.test_case "alpbb" `Quick test_alpbb_known ] );
      ( "experiments",
        [ Alcotest.test_case "registry" `Quick test_experiments_registry ] )
    ]
