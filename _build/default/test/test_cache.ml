open Bv_cache

let mk ?(size = 1024) ?(ways = 2) ?(line = 64) () =
  Sa_cache.create ~name:"t" ~size_bytes:size ~ways ~line_bytes:line

let hit = Alcotest.testable (Fmt.of_to_string (function `Hit -> "hit" | `Miss -> "miss")) ( = )

let test_construction () =
  Alcotest.check_raises "non-pow2 line"
    (Invalid_argument "t: line_bytes must be a power of two") (fun () ->
      ignore (mk ~line:48 ()));
  let c = mk () in
  Alcotest.(check int) "sets" 8 (Sa_cache.sets c);
  Alcotest.(check int) "line" 64 (Sa_cache.line_bytes c)

let test_hit_after_fill () =
  let c = mk () in
  Alcotest.check hit "cold miss" `Miss (Sa_cache.access c ~addr:0 ~write:false);
  Alcotest.check hit "warm hit" `Hit (Sa_cache.access c ~addr:8 ~write:false);
  Alcotest.check hit "same line other word" `Hit
    (Sa_cache.access c ~addr:63 ~write:false);
  Alcotest.check hit "next line misses" `Miss
    (Sa_cache.access c ~addr:64 ~write:false)

let test_lru () =
  let c = mk () in
  (* 2 ways, 8 sets: addresses with identical set bits conflict *)
  let conflict i = i * 8 * 64 in
  ignore (Sa_cache.access c ~addr:(conflict 0) ~write:false);
  ignore (Sa_cache.access c ~addr:(conflict 1) ~write:false);
  (* touch way 0 so way 1 is LRU *)
  ignore (Sa_cache.access c ~addr:(conflict 0) ~write:false);
  ignore (Sa_cache.access c ~addr:(conflict 2) ~write:false);
  (* conflict 1 must have been evicted, conflict 0 kept *)
  Alcotest.check hit "kept MRU" `Hit
    (Sa_cache.access c ~addr:(conflict 0) ~write:false);
  Alcotest.check hit "evicted LRU" `Miss
    (Sa_cache.access c ~addr:(conflict 1) ~write:false)

let test_writeback () =
  let c = mk () in
  let conflict i = i * 8 * 64 in
  ignore (Sa_cache.access c ~addr:(conflict 0) ~write:true);
  ignore (Sa_cache.access c ~addr:(conflict 1) ~write:false);
  ignore (Sa_cache.access c ~addr:(conflict 2) ~write:false);
  (* dirty line 0 evicted by the third conflicting fill *)
  let s = Sa_cache.stats c in
  Alcotest.(check int) "evictions" 1 s.Sa_cache.evictions;
  Alcotest.(check int) "writebacks" 1 s.Sa_cache.writebacks

let test_probe_and_stats () =
  let c = mk () in
  Alcotest.(check bool) "probe does not allocate" false
    (Sa_cache.probe c ~addr:0);
  Alcotest.(check bool) "still cold" false (Sa_cache.probe c ~addr:0);
  ignore (Sa_cache.access c ~addr:0 ~write:false);
  Alcotest.(check bool) "probe hits" true (Sa_cache.probe c ~addr:0);
  Alcotest.(check (float 0.001)) "miss rate" 1.0 (Sa_cache.miss_rate c);
  Sa_cache.reset_stats c;
  Alcotest.(check int) "reset" 0 (Sa_cache.stats c).Sa_cache.accesses;
  Sa_cache.invalidate_all c;
  Alcotest.(check bool) "invalidated" false (Sa_cache.probe c ~addr:0)

let test_hierarchy_latencies () =
  let h = Hierarchy.create () in
  let lat, level = Hierarchy.data_access h ~addr:0 ~write:false in
  Alcotest.(check int) "full miss" (4 + 12 + 25 + 140) lat;
  Alcotest.(check bool) "level mem" true (level = Hierarchy.Mem);
  let lat, level = Hierarchy.data_access h ~addr:8 ~write:false in
  Alcotest.(check int) "l1 hit" 4 lat;
  Alcotest.(check bool) "level l1" true (level = Hierarchy.L1);
  (* instruction fetch hits cost nothing; use an address the earlier data
     accesses did not pull into the (inclusive) lower levels *)
  let lat, _ = Hierarchy.inst_access h ~addr:1_000_000 in
  Alcotest.(check int) "i$ cold miss" (12 + 25 + 140) lat;
  let lat, _ = Hierarchy.inst_access h ~addr:1_000_032 in
  Alcotest.(check int) "i$ hit free" 0 lat

let test_hierarchy_l2_hit () =
  let cfg =
    { Hierarchy.default_config with
      Hierarchy.l1d_bytes = 4096; l1d_ways = 1 }
  in
  let h = Hierarchy.create ~config:cfg () in
  (* fill a line, evict it from tiny L1 by a conflicting line, re-access:
     should hit in L2 *)
  ignore (Hierarchy.data_access h ~addr:0 ~write:false);
  ignore (Hierarchy.data_access h ~addr:4096 ~write:false);
  let lat, level = Hierarchy.data_access h ~addr:0 ~write:false in
  Alcotest.(check int) "l2 hit" (4 + 12) lat;
  Alcotest.(check bool) "level l2" true (level = Hierarchy.L2)

let prop_inclusive_second_access_hits =
  QCheck2.Test.make ~name:"re-access within a line always hits L1" ~count:100
    QCheck2.Gen.(int_bound 100_000)
    (fun addr ->
      let h = Hierarchy.create () in
      ignore (Hierarchy.data_access h ~addr ~write:false);
      fst (Hierarchy.data_access h ~addr ~write:false) = 4)

let () =
  Alcotest.run "bv_cache"
    [ ( "sa_cache",
        [ Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "hit after fill" `Quick test_hit_after_fill;
          Alcotest.test_case "lru" `Quick test_lru;
          Alcotest.test_case "writeback" `Quick test_writeback;
          Alcotest.test_case "probe/stats" `Quick test_probe_and_stats
        ] );
      ( "hierarchy",
        [ Alcotest.test_case "latencies" `Quick test_hierarchy_latencies;
          Alcotest.test_case "l2 hit" `Quick test_hierarchy_l2_hit
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_inclusive_second_access_hits ] )
    ]
