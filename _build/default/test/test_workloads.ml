open Bv_workloads

let tiny_spec ?(seed = 7) ?(classes = None) () =
  let branch_classes =
    Option.value classes
      ~default:
        [ Spec.cls ~count:3 ~taken_rate:0.6 ~predictability:0.95 ();
          Spec.cls ~iid:true ~count:3 ~taken_rate:0.92 ~predictability:0.92 ();
          Spec.cls ~iid:true ~count:1 ~taken_rate:0.5 ~predictability:0.5 ()
        ]
  in
  Spec.make ~name:"tiny" ~suite:Spec.Int_2006 ~seed ~branch_classes
    ~inner_n:64 ~reps:3 ()

let test_rng_determinism () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:1 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done;
  let c = Rng.create ~seed:2 in
  Alcotest.(check bool) "different seed differs" true (Rng.next a <> Rng.next c);
  let f = Rng.float (Rng.create ~seed:3) in
  Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 1.0);
  Alcotest.(check bool) "below" true (Rng.below (Rng.create ~seed:4) 10 < 10)

let test_rng_shuffle_permutes () =
  let a = Array.init 50 Fun.id in
  let b = Array.copy a in
  Rng.shuffle (Rng.create ~seed:5) b;
  Alcotest.(check bool) "same multiset" true
    (List.sort compare (Array.to_list b) = Array.to_list a);
  Alcotest.(check bool) "actually shuffled" true (a <> b)

let measured_rate seq =
  let t = Array.fold_left (fun a b -> a + Bool.to_int b) 0 seq in
  Float.of_int t /. Float.of_int (Array.length seq)

let test_stream_bias () =
  let rng = Rng.create ~seed:11 in
  List.iter
    (fun rate ->
      let seq =
        Stream.sequence ~rng ~taken_rate:rate ~predictability:0.95
          ~length:20000 ()
      in
      let m = measured_rate seq in
      Alcotest.(check bool)
        (Printf.sprintf "rate %.2f measured %.3f" rate m)
        true
        (Float.abs (m -. rate) < 0.07))
    [ 0.1; 0.4; 0.6; 0.9 ]

let test_stream_iid () =
  let rng = Rng.create ~seed:12 in
  let seq =
    Stream.sequence ~noise:1.0 ~rng ~taken_rate:0.8 ~predictability:0.8
      ~length:20000 ()
  in
  Alcotest.(check bool) "iid keeps bias" true
    (Float.abs (measured_rate seq -. 0.8) < 0.03)

let test_stream_validation () =
  let rng = Rng.create ~seed:13 in
  List.iter
    (fun f -> match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")
    [ (fun () ->
        ignore (Stream.sequence ~rng ~taken_rate:1.5 ~predictability:0.9 ~length:8 ()));
      (fun () ->
        ignore (Stream.sequence ~rng ~taken_rate:0.5 ~predictability:2.0 ~length:8 ()));
      (fun () ->
        ignore (Stream.sequence ~rng ~taken_rate:0.5 ~predictability:0.9 ~length:0 ()));
      (fun () ->
        ignore
          (Stream.sequence ~period:0 ~rng ~taken_rate:0.5 ~predictability:0.9
             ~length:8 ()))
    ]

let test_noise_for_bounds () =
  Alcotest.(check (float 0.001)) "no noise at pred 1" 0.0
    (Stream.noise_for ~taken_rate:0.6 ~predictability:1.0);
  Alcotest.(check bool) "in [0,1]" true
    (let q = Stream.noise_for ~taken_rate:0.5 ~predictability:0.4 in
     q >= 0.0 && q <= 1.0)

let test_generated_program_wellformed () =
  let spec = tiny_spec () in
  let prog = Gen.generate ~input:1 spec in
  Bv_ir.Validate.check_exn prog;
  Alcotest.(check int) "sites" 7 (Gen.site_count spec);
  (* runs to completion functionally *)
  let st = Bv_exec.Interp.run (Bv_ir.Layout.program prog) in
  Alcotest.(check bool) "halts" true st.Bv_exec.Interp.halted;
  Alcotest.(check bool) "does real work" true
    (st.Bv_exec.Interp.instr_count > 1000)

let test_code_is_input_independent () =
  let spec = tiny_spec () in
  let code input =
    (Bv_ir.Layout.program (Gen.generate ~input spec)).Bv_ir.Layout.code
  in
  Alcotest.(check bool) "same static code" true (code 1 = code 2);
  let data input =
    Bv_ir.Program.initial_memory (Gen.generate ~input spec)
  in
  Alcotest.(check bool) "different data" true (data 1 <> data 2)

let test_generated_determinism () =
  let spec = tiny_spec () in
  let d input =
    Bv_exec.Interp.arch_digest
      (Bv_exec.Interp.run (Bv_ir.Layout.program (Gen.generate ~input spec)))
  in
  Alcotest.(check int) "same input same digest" (d 1) (d 1);
  Alcotest.(check bool) "inputs differ" true (d 1 <> d 2)

let test_generated_temp_pool_free () =
  (* the generator must leave r48-r63 for the transformation *)
  let prog = Gen.generate (tiny_spec ()) in
  let uses_temp i =
    List.exists
      (fun r -> Bv_isa.Reg.index r >= 48)
      (Bv_isa.Instr.defs i @ Bv_isa.Instr.uses i)
  in
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              if uses_temp i then
                Alcotest.failf "temp register used by %s"
                  (Bv_isa.Instr.to_string i))
            b.Bv_ir.Block.body)
        p.Bv_ir.Proc.blocks)
    prog.Bv_ir.Program.procs

let test_site_cap () =
  let classes =
    Some [ Spec.cls ~count:70 ~taken_rate:0.5 ~predictability:0.5 () ]
  in
  match Gen.generate (tiny_spec ~classes ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "should reject > 62 sites"

let test_suites_shape () =
  Alcotest.(check int) "2006 int" 12 (List.length Suites.int_2006);
  Alcotest.(check int) "2006 fp" 17 (List.length Suites.fp_2006);
  Alcotest.(check int) "2000 int" 12 (List.length Suites.int_2000);
  Alcotest.(check int) "2000 fp" 14 (List.length Suites.fp_2000);
  Alcotest.(check int) "all" 55 (List.length Suites.all);
  let names = List.map (fun s -> s.Spec.name) Suites.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "find" true (Suites.find "mcf" <> None);
  Alcotest.(check bool) "find miss" true (Suites.find "nope" = None);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Spec.name ^ " has sites")
        true
        (Spec.total_sites s > 0 && Spec.total_sites s <= 62))
    Suites.all

let test_all_suites_generate () =
  (* every benchmark generates a valid program (cheap structural pass) *)
  List.iter
    (fun s ->
      let prog = Gen.generate { s with Spec.inner_n = 16; reps = 2 } in
      Bv_ir.Validate.check_exn prog)
    Suites.all

let test_all_suites_execute () =
  (* shrunk versions of all 55 benchmarks run to completion with no
     faults: catches addressing/calibration regressions suite-wide *)
  List.iter
    (fun s ->
      let small = { s with Spec.inner_n = 16; reps = 2 } in
      let st =
        Bv_exec.Interp.run ~max_instrs:500_000
          (Bv_ir.Layout.program (Gen.generate ~input:1 small))
      in
      Alcotest.(check bool) (s.Spec.name ^ " halts") true
        st.Bv_exec.Interp.halted;
      Alcotest.(check bool) (s.Spec.name ^ " stores") true
        (st.Bv_exec.Interp.store_count > 0))
    Suites.all

let test_all_suites_transform () =
  (* the full pipeline (profile, select, transform, equivalence) holds for
     a shrunk version of every benchmark *)
  List.iter
    (fun s ->
      let small = { s with Spec.inner_n = 32; reps = 2 } in
      let prog = Gen.generate ~input:1 small in
      let image = Bv_ir.Layout.program (Bv_ir.Program.copy prog) in
      let profile =
        Bv_profile.Profile.collect
          ~predictor:(Bv_bpred.Kind.create Bv_bpred.Kind.Tournament)
          image
      in
      let sel =
        Vanguard.Select.select ~threshold:(-1.0) ~min_executed:1 ~profile prog
      in
      let result =
        Vanguard.Transform.apply ~exit_live:Gen.live_at_exit
          ~candidates:sel.Vanguard.Select.candidates prog
      in
      let want = Bv_exec.Interp.arch_digest (Bv_exec.Interp.run image) in
      let got =
        Bv_exec.Interp.arch_digest
          (Bv_exec.Interp.run
             (Bv_ir.Layout.program result.Vanguard.Transform.program))
      in
      Alcotest.(check int) (s.Spec.name ^ " equivalent") want got)
    Suites.all

let prop_stream_measured_predictability =
  QCheck2.Test.make ~name:"pattern streams beat their bias under gshare"
    ~count:10
    QCheck2.Gen.(pair (int_range 0 1000) (float_range 0.55 0.7))
    (fun (seed, rate) ->
      let rng = Rng.create ~seed in
      let seq =
        Stream.sequence ~rng ~taken_rate:rate ~predictability:0.97
          ~length:8000 ()
      in
      let p = Bv_bpred.Gshare.create () in
      let correct = ref 0 in
      Array.iter
        (fun taken ->
          let pred, meta = p.Bv_bpred.Predictor.predict ~pc:64 ~outcome:taken in
          if pred = taken then incr correct
          else p.Bv_bpred.Predictor.recover meta ~taken;
          p.Bv_bpred.Predictor.update meta ~pc:64 ~taken)
        seq;
      let acc = Float.of_int !correct /. 8000.0 in
      let bias = Float.max (measured_rate seq) (1.0 -. measured_rate seq) in
      acc > bias +. 0.05)

let () =
  Alcotest.run "bv_workloads"
    [ ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes
        ] );
      ( "stream",
        [ Alcotest.test_case "bias" `Quick test_stream_bias;
          Alcotest.test_case "iid" `Quick test_stream_iid;
          Alcotest.test_case "validation" `Quick test_stream_validation;
          Alcotest.test_case "noise bounds" `Quick test_noise_for_bounds
        ] );
      ( "generator",
        [ Alcotest.test_case "well-formed" `Quick
            test_generated_program_wellformed;
          Alcotest.test_case "input-independent code" `Quick
            test_code_is_input_independent;
          Alcotest.test_case "deterministic" `Quick test_generated_determinism;
          Alcotest.test_case "temp pool untouched" `Quick
            test_generated_temp_pool_free;
          Alcotest.test_case "site cap" `Quick test_site_cap
        ] );
      ( "suites",
        [ Alcotest.test_case "shape" `Quick test_suites_shape;
          Alcotest.test_case "all generate" `Slow test_all_suites_generate;
          Alcotest.test_case "all execute" `Slow test_all_suites_execute;
          Alcotest.test_case "all transform" `Slow test_all_suites_transform
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_stream_measured_predictability ] )
    ]
