open Bv_bpred

(* Drive a predictor through an outcome sequence in program order (predict,
   repair history on a miss, train) and return its accuracy. *)
let accuracy ?(pc = 0x400) (p : Predictor.t) outcomes =
  let correct = ref 0 in
  Array.iter
    (fun taken ->
      let pred, meta = p.Predictor.predict ~pc ~outcome:taken in
      if pred = taken then incr correct
      else p.Predictor.recover meta ~taken;
      p.Predictor.update meta ~pc ~taken)
    outcomes;
  Float.of_int !correct /. Float.of_int (Array.length outcomes)

let periodic n pattern = Array.init n (fun i -> pattern.(i mod Array.length pattern))

let test_counters () =
  Alcotest.(check int) "saturates high" 3
    (Predictor.counter_update 3 ~taken:true ~max:3);
  Alcotest.(check int) "saturates low" 0
    (Predictor.counter_update 0 ~taken:false ~max:3);
  Alcotest.(check int) "increments" 2
    (Predictor.counter_update 1 ~taken:true ~max:3);
  Alcotest.(check bool) "taken above midpoint" true
    (Predictor.counter_taken 2 ~max:3);
  Alcotest.(check bool) "not taken below" false
    (Predictor.counter_taken 1 ~max:3)

let test_static () =
  let t = Predictor.always true and nt = Predictor.always false in
  Alcotest.(check (float 0.01)) "always-taken on all-taken" 1.0
    (accuracy t (Array.make 100 true));
  Alcotest.(check (float 0.01)) "always-nt on all-taken" 0.0
    (accuracy nt (Array.make 100 true))

let test_perfect () =
  let outcomes = Array.init 200 (fun i -> i * 7 mod 3 = 0) in
  Alcotest.(check (float 0.001)) "oracle" 1.0
    (accuracy Predictor.perfect outcomes)

let test_bimodal_learns_bias () =
  let p = Bimodal.create () in
  let outcomes = Array.init 1000 (fun i -> i mod 10 <> 0) in
  (* 90% taken *)
  let a = accuracy p outcomes in
  Alcotest.(check bool) (Printf.sprintf "bimodal ~bias (%.2f)" a) true
    (a > 0.85)

let test_gshare_learns_pattern () =
  let p = Gshare.create () in
  let outcomes = periodic 2000 [| true; false |] in
  let a = accuracy p outcomes in
  Alcotest.(check bool) (Printf.sprintf "gshare alternation (%.3f)" a) true
    (a > 0.97)

let test_bimodal_fails_pattern () =
  let p = Bimodal.create () in
  let outcomes = periodic 2000 [| true; false |] in
  let a = accuracy p outcomes in
  Alcotest.(check bool) "bimodal can't learn alternation" true (a < 0.7)

let test_tournament_beats_components () =
  (* biased stream favours bimodal; patterned favours gshare; the chooser
     should track both *)
  let patterned = periodic 4000 [| true; true; false; true |] in
  let a = accuracy (Tournament.create ()) patterned in
  Alcotest.(check bool) (Printf.sprintf "tournament pattern (%.3f)" a) true
    (a > 0.95)

let test_tage_long_history () =
  (* a pattern longer than gshare-small's 8-bit history *)
  let pattern = Array.init 24 (fun i -> i mod 8 < 3 || i = 20) in
  let stream = periodic 30000 pattern in
  let small = accuracy (Gshare.create ~table_bits:13 ~history_bits:8 ()) stream in
  let tage = accuracy (Tage.create ()) stream in
  Alcotest.(check bool)
    (Printf.sprintf "tage (%.3f) > short gshare (%.3f)" tage small)
    true
    (tage > small && tage > 0.95)

let test_isl_loop_predictor () =
  (* classic loop-exit shape: taken 40x then one not-taken; the loop
     predictor captures the trip count exactly *)
  let pattern = Array.init 41 (fun i -> i <> 40) in
  let stream = periodic 30000 pattern in
  let isl = accuracy (Isl_tage.create ()) stream in
  Alcotest.(check bool) (Printf.sprintf "isl-tage loop (%.4f)" isl) true
    (isl > 0.99)

let test_perceptron_correlation () =
  (* outcome = XOR of the last two outcomes: linearly separable over
     history bits, beyond a bimodal counter but easy for a perceptron *)
  let outcomes = Array.make 20000 false in
  let rng = Bv_workloads.Rng.create ~seed:8 in
  for i = 2 to 19999 do
    outcomes.(i) <-
      (if Bv_workloads.Rng.bernoulli rng 0.02 then Bv_workloads.Rng.bernoulli rng 0.5
       else outcomes.(i - 1) <> outcomes.(i - 2))
  done;
  let perc = accuracy (Perceptron.create ()) outcomes in
  let bim = accuracy (Bimodal.create ()) outcomes in
  Alcotest.(check bool)
    (Printf.sprintf "perceptron %.3f beats bimodal %.3f" perc bim)
    true
    (perc > 0.9 && perc > bim +. 0.2)

let test_perceptron_weight_saturation () =
  (* a constant stream must not overflow the weights and stays perfect *)
  let p = Perceptron.create ~weight_bits:4 () in
  let a = accuracy p (Array.make 50000 true) in
  Alcotest.(check bool) (Printf.sprintf "saturated weights ok (%.4f)" a) true
    (a > 0.99)

let test_history_recovery () =
  (* after recover, the history must equal the snapshot plus the corrected
     outcome: feeding the same stream with constant mispredict-repairs must
     keep behaviour deterministic *)
  let p1 = Gshare.create () and p2 = Gshare.create () in
  let stream = Array.init 500 (fun i -> i mod 3 = 0) in
  let a1 = accuracy p1 stream and a2 = accuracy p2 stream in
  Alcotest.(check (float 0.0001)) "deterministic" a1 a2

let test_storage_bits () =
  Alcotest.(check int) "tournament 24KB" (3 * 2 * 32768)
    (Tournament.create ()).Predictor.storage_bits;
  Alcotest.(check bool) "isl biggest" true
    ((Isl_tage.create ()).Predictor.storage_bits
    > (Tournament.create ()).Predictor.storage_bits)

let test_kind_roundtrip () =
  List.iter
    (fun k ->
      match Kind.of_name (Kind.name k) with
      | Some k' -> Alcotest.(check string) "roundtrip" (Kind.name k) (Kind.name k')
      | None -> Alcotest.failf "of_name failed for %s" (Kind.name k))
    Kind.all;
  Alcotest.(check bool) "unknown" true (Kind.of_name "nope" = None)

let test_btb () =
  let btb = Btb.create ~entries:16 () in
  Alcotest.(check (option int)) "cold miss" None (Btb.lookup btb ~pc:100);
  Btb.update btb ~pc:100 ~target:555;
  Alcotest.(check (option int)) "hit" (Some 555) (Btb.lookup btb ~pc:100);
  Alcotest.(check int) "stats" 1 (Btb.hits btb);
  Alcotest.(check int) "stats" 1 (Btb.misses btb)

let test_ras () =
  let ras = Ras.create ~entries:4 () in
  Alcotest.(check (option int)) "empty" None (Ras.pop ras);
  Ras.push ras 1;
  Ras.push ras 2;
  Alcotest.(check (option int)) "lifo" (Some 2) (Ras.pop ras);
  Alcotest.(check (option int)) "lifo" (Some 1) (Ras.pop ras);
  (* overflow wraps and loses the deepest entries *)
  List.iter (Ras.push ras) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "depth capped" 4 (Ras.depth ras);
  Alcotest.(check (option int)) "newest wins" (Some 5) (Ras.pop ras);
  let snap = Ras.snapshot ras in
  ignore (Ras.pop ras);
  Ras.restore ras ~from:snap;
  Alcotest.(check (option int)) "restored" (Some 4) (Ras.pop ras)

(* properties *)
let stream_gen =
  QCheck2.Gen.(array_size (int_range 50 400) bool)

let prop_no_crash kind =
  QCheck2.Test.make
    ~name:(Printf.sprintf "%s total on random streams" (Kind.name kind))
    ~count:30 stream_gen
    (fun outcomes ->
      let a = accuracy (Kind.create kind) outcomes in
      a >= 0.0 && a <= 1.0)

let prop_bimodal_tracks_bias =
  QCheck2.Test.make ~name:"bimodal accuracy >= bias - slack (iid streams)"
    ~count:30
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 100))
    (fun (seed, pct) ->
      let rng = Bv_workloads.Rng.create ~seed in
      let outcomes =
        Array.init 2000 (fun _ ->
            Bv_workloads.Rng.bernoulli rng (Float.of_int pct /. 100.0))
      in
      let bias =
        let t = Array.fold_left (fun a b -> a + Bool.to_int b) 0 outcomes in
        let r = Float.of_int t /. 2000.0 in
        Float.max r (1.0 -. r)
      in
      accuracy (Bimodal.create ()) outcomes >= bias -. 0.1)

let () =
  Alcotest.run "bv_bpred"
    [ ( "primitives",
        [ Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "static" `Quick test_static;
          Alcotest.test_case "perfect" `Quick test_perfect
        ] );
      ( "learning",
        [ Alcotest.test_case "bimodal bias" `Quick test_bimodal_learns_bias;
          Alcotest.test_case "gshare pattern" `Quick test_gshare_learns_pattern;
          Alcotest.test_case "bimodal no pattern" `Quick
            test_bimodal_fails_pattern;
          Alcotest.test_case "tournament" `Quick
            test_tournament_beats_components;
          Alcotest.test_case "tage long history" `Slow test_tage_long_history;
          Alcotest.test_case "isl-tage loop" `Slow test_isl_loop_predictor;
          Alcotest.test_case "history recovery" `Quick test_history_recovery;
          Alcotest.test_case "perceptron correlation" `Slow
            test_perceptron_correlation;
          Alcotest.test_case "perceptron saturation" `Slow
            test_perceptron_weight_saturation
        ] );
      ( "metadata",
        [ Alcotest.test_case "storage bits" `Quick test_storage_bits;
          Alcotest.test_case "kind names" `Quick test_kind_roundtrip
        ] );
      ( "btb/ras",
        [ Alcotest.test_case "btb" `Quick test_btb;
          Alcotest.test_case "ras" `Quick test_ras
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          (prop_bimodal_tracks_bias
          :: List.map prop_no_crash
               Kind.[ Bimodal; Gshare; Tournament; Perceptron; Tage; Isl_tage ]) )
    ]
