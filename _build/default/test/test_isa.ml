open Bv_isa

let r = Reg.make

let check_regs = Alcotest.(check (list string))
let reg_names rs = List.map Reg.to_string rs

let test_reg_bounds () =
  Alcotest.check_raises "negative" (Invalid_argument "Reg.make: -1 out of range [0, 64)")
    (fun () -> ignore (Reg.make (-1)));
  Alcotest.check_raises "too big" (Invalid_argument "Reg.make: 64 out of range [0, 64)")
    (fun () -> ignore (Reg.make 64));
  Alcotest.(check int) "count" 64 Reg.count;
  Alcotest.(check int) "index" 7 (Reg.index (r 7));
  Alcotest.(check int) "all" 64 (List.length Reg.all)

let test_defs_uses () =
  let i = Instr.Alu { op = Instr.Add; dst = r 1; src1 = r 2; src2 = Instr.Reg (r 3) } in
  check_regs "alu defs" [ "r1" ] (reg_names (Instr.defs i));
  check_regs "alu uses" [ "r2"; "r3" ] (reg_names (Instr.uses i));
  let i = Instr.Alu { op = Instr.Add; dst = r 1; src1 = r 2; src2 = Instr.Imm 5 } in
  check_regs "imm uses" [ "r2" ] (reg_names (Instr.uses i));
  let i = Instr.Load { dst = r 4; base = r 5; offset = 8; speculative = false } in
  check_regs "load defs" [ "r4" ] (reg_names (Instr.defs i));
  check_regs "load uses" [ "r5" ] (reg_names (Instr.uses i));
  let i = Instr.Store { src = r 6; base = r 7; offset = 0 } in
  check_regs "store defs" [] (reg_names (Instr.defs i));
  check_regs "store uses" [ "r6"; "r7" ] (reg_names (Instr.uses i));
  let i = Instr.Branch { on = true; src = r 8; target = "x"; id = 1 } in
  check_regs "branch defs" [] (reg_names (Instr.defs i));
  check_regs "branch uses" [ "r8" ] (reg_names (Instr.uses i));
  let i =
    Instr.Resolve
      { on = true; src = r 9; target = "x"; predicted_taken = false; id = 1 }
  in
  check_regs "resolve uses" [ "r9" ] (reg_names (Instr.uses i));
  check_regs "predict uses" []
    (reg_names (Instr.uses (Instr.Predict { target = "x"; id = 1 })))

let test_fu_class () =
  let fu = Alcotest.testable (Fmt.of_to_string (function
    | Instr.Fu_int -> "int" | Instr.Fu_fp -> "fp" | Instr.Fu_mem -> "mem"
    | Instr.Fu_branch -> "br" | Instr.Fu_none -> "none")) ( = ) in
  Alcotest.check fu "alu" Instr.Fu_int
    (Instr.fu_class (Instr.Alu { op = Instr.Add; dst = r 0; src1 = r 0; src2 = Instr.Imm 0 }));
  Alcotest.check fu "fpu" Instr.Fu_fp
    (Instr.fu_class (Instr.Fpu { op = Instr.Mul; dst = r 0; src1 = r 0; src2 = Instr.Imm 0 }));
  Alcotest.check fu "load" Instr.Fu_mem
    (Instr.fu_class (Instr.Load { dst = r 0; base = r 0; offset = 0; speculative = true }));
  Alcotest.check fu "jump" Instr.Fu_branch (Instr.fu_class (Instr.Jump "x"));
  Alcotest.check fu "predict is free" Instr.Fu_none
    (Instr.fu_class (Instr.Predict { target = "x"; id = 0 }));
  Alcotest.check fu "nop is free" Instr.Fu_none (Instr.fu_class Instr.Nop)

let test_terminators () =
  Alcotest.(check bool) "branch" true
    (Instr.is_terminator (Instr.Branch { on = true; src = r 0; target = "x"; id = 0 }));
  Alcotest.(check bool) "halt" true (Instr.is_terminator Instr.Halt);
  Alcotest.(check bool) "alu" false
    (Instr.is_terminator (Instr.Alu { op = Instr.Add; dst = r 0; src1 = r 0; src2 = Instr.Imm 0 }));
  Alcotest.(check (option string)) "target" (Some "lbl")
    (Instr.branch_target (Instr.Jump "lbl"));
  Alcotest.(check (option string)) "ret no target" None
    (Instr.branch_target Instr.Ret)

let test_eval_alu () =
  Alcotest.(check int) "add" 7 (Instr.eval_alu Instr.Add 3 4);
  Alcotest.(check int) "sub" (-1) (Instr.eval_alu Instr.Sub 3 4);
  Alcotest.(check int) "and" 0b100 (Instr.eval_alu Instr.And 0b110 0b101);
  Alcotest.(check int) "or" 0b111 (Instr.eval_alu Instr.Or 0b110 0b101);
  Alcotest.(check int) "xor" 0b011 (Instr.eval_alu Instr.Xor 0b110 0b101);
  Alcotest.(check int) "shl" 24 (Instr.eval_alu Instr.Shl 3 3);
  Alcotest.(check int) "shr" 3 (Instr.eval_alu Instr.Shr 24 3);
  Alcotest.(check int) "shr negative" (-2) (Instr.eval_alu Instr.Shr (-8) 2);
  Alcotest.(check int) "mul" 12 (Instr.eval_alu Instr.Mul 3 4);
  (* shift amounts are masked, never raising *)
  Alcotest.(check int) "shl huge amount" 0 (Instr.eval_alu Instr.Shl 1 1000 / max_int)

let test_eval_cmp () =
  let t op a b = Instr.eval_cmp op a b in
  Alcotest.(check bool) "eq" true (t Instr.Eq 5 5);
  Alcotest.(check bool) "ne" true (t Instr.Ne 5 6);
  Alcotest.(check bool) "lt" true (t Instr.Lt (-1) 0);
  Alcotest.(check bool) "ge" true (t Instr.Ge 0 0);
  Alcotest.(check bool) "le" false (t Instr.Le 1 0);
  Alcotest.(check bool) "gt" true (t Instr.Gt 1 0)

let test_pp () =
  let s i = Instr.to_string i in
  Alcotest.(check string) "load spec" "ld+ r1, [r2 + 8]"
    (s (Instr.Load { dst = r 1; base = r 2; offset = 8; speculative = true }));
  Alcotest.(check string) "branch" "bnz r3, foo  ; site 9"
    (s (Instr.Branch { on = true; src = r 3; target = "foo"; id = 9 }));
  Alcotest.(check string) "predict" "predict foo  ; site 2"
    (s (Instr.Predict { target = "foo"; id = 2 }));
  Alcotest.(check string) "resolve" "resolve.z.pt r4, fix  ; site 3"
    (s (Instr.Resolve { on = false; src = r 4; target = "fix";
                        predicted_taken = true; id = 3 }))

let test_labels () =
  Label.reset_fresh_counter ();
  let a = Label.fresh ~prefix:"x" in
  let b = Label.fresh ~prefix:"x" in
  Alcotest.(check bool) "fresh distinct" false (Label.equal a b);
  Label.reset_fresh_counter ();
  Alcotest.(check string) "deterministic" a (Label.fresh ~prefix:"x")

let test_encoded_bytes () =
  Alcotest.(check int) "fixed 4" 4 (Instr.encoded_bytes Instr.Halt);
  Alcotest.(check int) "fixed 4" 4
    (Instr.encoded_bytes (Instr.Predict { target = "x"; id = 0 }))

(* properties *)
let alu_op_gen =
  QCheck2.Gen.oneofl
    Instr.[ Add; Sub; And; Or; Xor; Shl; Shr; Mul ]

let prop_alu_total =
  QCheck2.Test.make ~name:"eval_alu total on random inputs" ~count:500
    QCheck2.Gen.(triple alu_op_gen (int_range (-1000000) 1000000) (int_range (-1000000) 1000000))
    (fun (op, a, b) ->
      let v = Instr.eval_alu op a b in
      (* re-evaluation is deterministic *)
      v = Instr.eval_alu op a b)

let prop_cmp_antisymmetric =
  QCheck2.Test.make ~name:"lt/ge partition" ~count:500
    QCheck2.Gen.(pair small_signed_int small_signed_int)
    (fun (a, b) -> Instr.eval_cmp Instr.Lt a b <> Instr.eval_cmp Instr.Ge a b)

let prop_defs_uses_disjoint_store =
  QCheck2.Test.make ~name:"stores define nothing" ~count:100
    QCheck2.Gen.(pair (int_bound 63) (int_bound 63))
    (fun (a, b) ->
      Instr.defs (Instr.Store { src = r a; base = r b; offset = 0 }) = [])

let () =
  Alcotest.run "bv_isa"
    [ ( "reg",
        [ Alcotest.test_case "bounds" `Quick test_reg_bounds ] );
      ( "instr",
        [ Alcotest.test_case "defs/uses" `Quick test_defs_uses;
          Alcotest.test_case "fu classes" `Quick test_fu_class;
          Alcotest.test_case "terminators" `Quick test_terminators;
          Alcotest.test_case "eval_alu" `Quick test_eval_alu;
          Alcotest.test_case "eval_cmp" `Quick test_eval_cmp;
          Alcotest.test_case "pretty-printing" `Quick test_pp;
          Alcotest.test_case "encoded bytes" `Quick test_encoded_bytes
        ] );
      ( "label", [ Alcotest.test_case "fresh" `Quick test_labels ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_alu_total; prop_cmp_antisymmetric;
            prop_defs_uses_disjoint_store
          ] )
    ]
