test/test_isa.ml: Alcotest Bv_isa Fmt Instr Label List QCheck2 QCheck_alcotest Reg
