test/test_sched.ml: Alcotest Array Block Bv_exec Bv_ir Bv_isa Bv_sched Instr Layout List Proc Program QCheck2 QCheck_alcotest Reg Term Validate
