test/test_cache.ml: Alcotest Bv_cache Fmt Hierarchy QCheck2 QCheck_alcotest Sa_cache
