test/test_workloads.ml: Alcotest Array Bool Bv_bpred Bv_exec Bv_ir Bv_isa Bv_profile Bv_workloads Float Fun Gen List Option Printf QCheck2 QCheck_alcotest Rng Spec Stream Suites Vanguard
