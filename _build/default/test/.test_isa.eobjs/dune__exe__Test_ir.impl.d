test/test_ir.ml: Alcotest Array Block Bv_ir Bv_isa Cfg Format Hashtbl Instr Layout List Liveness Proc Program Reg String Term
