test/test_exec.ml: Alcotest Array Block Bv_exec Bv_ir Bv_isa Instr Interp Layout Proc Program Reg Term
