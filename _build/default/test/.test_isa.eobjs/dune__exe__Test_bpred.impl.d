test/test_bpred.ml: Alcotest Array Bimodal Bool Btb Bv_bpred Bv_workloads Float Gshare Isl_tage Kind List Perceptron Predictor Printf QCheck2 QCheck_alcotest Ras Tage Tournament
