test/test_toolchain.ml: Alcotest Array Asm Bv_exec Bv_ir Bv_isa Dominators Dot Format Instr Layout List Program Recover Reg String Vanguard
